//! The session layer: checkpointing, resumable multi-circuit
//! **campaigns**, and standalone pattern re-grading.
//!
//! The paper's evaluation (Table 3) is a campaign — the same ATPG flow
//! over a whole benchmark suite with aggregated accounting. This module
//! makes that a first-class, persistent operation:
//!
//! * [`Checkpointer`] — an [`Observer`] that serializes a resumable
//!   [`RunArtifact`] every N fault outcomes, so long runs survive
//!   interruption ([`crate::engine::AtpgBuilder::resume_from`] restarts
//!   them byte-identically);
//! * [`Campaign`] — one configuration, one parallelism level and one
//!   streaming observer shared across many circuits, producing a
//!   [`CampaignReport`] that subsumes the per-circuit
//!   [`CircuitReport`]s with a Table-3-style aggregate; with an artifact
//!   directory attached, a re-run skips completed circuits and resumes
//!   partial ones;
//! * [`grade_patterns`] — re-runs a saved [`PatternSet`] through the
//!   packed three-phase fault simulator
//!   ([`gdf_sim::grading::grade_filled_sequence`]), so exported tests can
//!   be re-validated independently of the run that generated them.
//!
//! # Example
//!
//! ```
//! use gdf_core::engine::Backend;
//! use gdf_core::session::Campaign;
//! use gdf_netlist::suite;
//!
//! let report = Campaign::builder()
//!     .backend(Backend::StuckAt)
//!     .circuit(suite::s27())
//!     .circuit(suite::extra_circuit("s42").unwrap())
//!     .run();
//! assert_eq!(report.circuits.len(), 2);
//! assert!(report.totals().tested > 0);
//! println!("{}", report.render());
//! ```

use crate::artifact::{ArtifactError, CircuitSource, PatternSet, RunArtifact};
use crate::driver::{DelayAtpg, DelayAtpgConfig, FaultClassification, FsimScratch};
use crate::engine::{faults_of, Atpg, AtpgError, Backend, Limits, Observer, RunSnapshot};
use crate::json::Json;
use crate::report::{CircuitReport, Coverage, Table3Row};
use gdf_netlist::{Circuit, Fault, FaultUniverse, ModelKind};
use gdf_tdgen::Sensitization;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Checkpointer
// ---------------------------------------------------------------------

/// An [`Observer`] that writes a resumable [`RunArtifact`] to disk every
/// `every` decided fault outcomes (credited drops count too). Attach it
/// with [`crate::engine::AtpgBuilder::observer`] or the
/// [`crate::engine::AtpgBuilder::checkpoint`] shorthand.
///
/// Writes are atomic (tmp + rename), so an interrupted run always leaves
/// either the previous or the new checkpoint, never a torn file. Write
/// failures are reported to stderr and do not stop the run (generation
/// is worth more than the checkpoint).
pub struct Checkpointer {
    path: PathBuf,
    every: usize,
    last_written: usize,
    source: Option<CircuitSource>,
    written: Arc<AtomicUsize>,
}

impl Checkpointer {
    /// Checkpoints to `path` every `every` outcomes (`every` is clamped
    /// to at least 1).
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        Checkpointer {
            path: path.into(),
            every: every.max(1),
            last_written: 0,
            source: None,
            written: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Records the circuit's provenance in every checkpoint (pass the
    /// original `.bench` file text or a suite reference so resume can
    /// rebuild the *identical* circuit; defaults to a
    /// [`gdf_netlist::to_bench`] rendering).
    pub fn with_source(mut self, source: CircuitSource) -> Self {
        self.source = Some(source);
        self
    }

    /// Shared count of snapshots successfully written. Clone the handle
    /// *before* moving the Checkpointer into a builder to learn, after
    /// the run, whether a resumable file actually exists (a run cancelled
    /// before the first cadence writes nothing).
    pub fn written_handle(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.written)
    }
}

impl Observer for Checkpointer {
    fn on_checkpoint(&mut self, snapshot: &RunSnapshot<'_>) {
        if snapshot.decided < self.last_written + self.every {
            return;
        }
        let artifact = RunArtifact::from_snapshot(snapshot, self.source.clone());
        match artifact.save(&self.path) {
            Ok(()) => {
                self.last_written = snapshot.decided;
                self.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => eprintln!("checkpoint write failed: {e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Progress events
// ---------------------------------------------------------------------

/// The serializable wire form of the [`Observer`] callbacks.
///
/// Every callback the engine streams ([`Observer::on_run_start`],
/// [`Observer::on_fault`], …) has a corresponding variant with a lossless
/// JSON codec ([`ProgressEvent::encode`] / [`ProgressEvent::decode`]), so
/// progress can cross a process or network boundary — `gdf serve` streams
/// these over `GET /jobs/<id>/events`, one compact JSON object per line.
///
/// Events intentionally carry aggregate counts and indices, not netlist
/// references: a consumer can follow a run without holding the circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// The run started (`on_run_start`).
    Started {
        /// Backend name (`"non-scan"`, `"enhanced-scan"`, `"stuck-at"`).
        engine: String,
        /// Circuit name.
        circuit: String,
        /// Faults the run will decide.
        total_faults: usize,
    },
    /// One fault was classified (`on_fault`), in deterministic stream
    /// order.
    Fault {
        /// Running count of decided faults, starting at 1.
        index: usize,
        /// The classification.
        classification: FaultClassification,
        /// `true` when credited by fault simulation.
        by_simulation: bool,
        /// Index of the detecting sequence, if any.
        sequence: Option<usize>,
    },
    /// A new test sequence was emitted (`on_sequence`).
    Sequence {
        /// Sequence index within the run.
        index: usize,
        /// Vectors in the sequence.
        vectors: usize,
    },
    /// Progress counters (`on_progress`).
    Progress {
        /// Decided faults so far.
        decided: usize,
        /// Total faults.
        total: usize,
    },
    /// The run finished (`on_run_end`), with the aggregate row.
    Finished {
        /// Faults with a complete test.
        tested: u32,
        /// Faults proven untestable.
        untestable: u32,
        /// Faults abandoned at a limit.
        aborted: u32,
        /// Total applied vectors.
        patterns: u32,
        /// Emitted sequences.
        sequences: u32,
    },
}

fn classification_name(c: FaultClassification) -> &'static str {
    match c {
        FaultClassification::Tested => "tested",
        FaultClassification::Untestable => "untestable",
        FaultClassification::Aborted => "aborted",
    }
}

impl ProgressEvent {
    /// Encodes to a JSON object with a `type` tag.
    pub fn encode(&self) -> Json {
        let num = |n: usize| Json::Num(n as f64);
        match self {
            ProgressEvent::Started {
                engine,
                circuit,
                total_faults,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("started".into())),
                ("engine".into(), Json::Str(engine.clone())),
                ("circuit".into(), Json::Str(circuit.clone())),
                ("total_faults".into(), num(*total_faults)),
            ]),
            ProgressEvent::Fault {
                index,
                classification,
                by_simulation,
                sequence,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("fault".into())),
                ("index".into(), num(*index)),
                (
                    "class".into(),
                    Json::Str(classification_name(*classification).into()),
                ),
                ("by_sim".into(), Json::Bool(*by_simulation)),
                (
                    "seq".into(),
                    sequence.map_or(Json::Null, |s| Json::Num(s as f64)),
                ),
            ]),
            ProgressEvent::Sequence { index, vectors } => Json::Obj(vec![
                ("type".into(), Json::Str("sequence".into())),
                ("index".into(), num(*index)),
                ("vectors".into(), num(*vectors)),
            ]),
            ProgressEvent::Progress { decided, total } => Json::Obj(vec![
                ("type".into(), Json::Str("progress".into())),
                ("decided".into(), num(*decided)),
                ("total".into(), num(*total)),
            ]),
            ProgressEvent::Finished {
                tested,
                untestable,
                aborted,
                patterns,
                sequences,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("finished".into())),
                ("tested".into(), num(*tested as usize)),
                ("untestable".into(), num(*untestable as usize)),
                ("aborted".into(), num(*aborted as usize)),
                ("patterns".into(), num(*patterns as usize)),
                ("sequences".into(), num(*sequences as usize)),
            ]),
        }
    }

    /// Decodes the wire form produced by [`ProgressEvent::encode`].
    pub fn decode(j: &Json) -> Result<ProgressEvent, ArtifactError> {
        let field = |name: &str| {
            j.get(name)
                .ok_or_else(|| ArtifactError::Schema(format!("event missing `{name}`")))
        };
        let count = |name: &str| {
            field(name)?
                .as_usize()
                .ok_or_else(|| ArtifactError::Schema(format!("event field `{name}` not a count")))
        };
        let text = |name: &str| {
            Ok::<String, ArtifactError>(
                field(name)?
                    .as_str()
                    .ok_or_else(|| {
                        ArtifactError::Schema(format!("event field `{name}` not a string"))
                    })?
                    .to_string(),
            )
        };
        match text("type")?.as_str() {
            "started" => Ok(ProgressEvent::Started {
                engine: text("engine")?,
                circuit: text("circuit")?,
                total_faults: count("total_faults")?,
            }),
            "fault" => Ok(ProgressEvent::Fault {
                index: count("index")?,
                classification: match text("class")?.as_str() {
                    "tested" => FaultClassification::Tested,
                    "untestable" => FaultClassification::Untestable,
                    "aborted" => FaultClassification::Aborted,
                    other => {
                        return Err(ArtifactError::Schema(format!(
                            "unknown classification `{other}`"
                        )))
                    }
                },
                by_simulation: field("by_sim")?
                    .as_bool()
                    .ok_or_else(|| ArtifactError::Schema("`by_sim` not a bool".into()))?,
                sequence: j.get("seq").and_then(Json::as_usize),
            }),
            "sequence" => Ok(ProgressEvent::Sequence {
                index: count("index")?,
                vectors: count("vectors")?,
            }),
            "progress" => Ok(ProgressEvent::Progress {
                decided: count("decided")?,
                total: count("total")?,
            }),
            "finished" => Ok(ProgressEvent::Finished {
                tested: count("tested")? as u32,
                untestable: count("untestable")? as u32,
                aborted: count("aborted")? as u32,
                patterns: count("patterns")? as u32,
                sequences: count("sequences")? as u32,
            }),
            other => Err(ArtifactError::Schema(format!(
                "unknown event type `{other}`"
            ))),
        }
    }
}

/// An [`Observer`] that forwards every callback as a [`ProgressEvent`] to
/// a sink closure — the bridge between the engine's borrowed, in-process
/// callbacks and anything that needs an owned, serializable stream (a
/// channel, a network fan-out buffer, a log file).
///
/// ```
/// use gdf_core::engine::{Atpg, Backend};
/// use gdf_core::session::{EventObserver, ProgressEvent};
/// use gdf_netlist::suite;
/// use std::sync::mpsc;
///
/// let (tx, rx) = mpsc::channel();
/// let c = suite::s27();
/// Atpg::builder(&c)
///     .backend(Backend::StuckAt)
///     .observer(EventObserver::new(move |ev| {
///         let _ = tx.send(ev);
///     }))
///     .build()
///     .run();
/// let events: Vec<ProgressEvent> = rx.try_iter().collect();
/// assert!(matches!(events.first(), Some(ProgressEvent::Started { .. })));
/// assert!(matches!(events.last(), Some(ProgressEvent::Finished { .. })));
/// ```
pub struct EventObserver {
    sink: Box<dyn FnMut(ProgressEvent) + Send>,
    decided: usize,
}

impl EventObserver {
    /// Wraps a sink; the closure receives every event in stream order.
    pub fn new(sink: impl FnMut(ProgressEvent) + Send + 'static) -> Self {
        EventObserver {
            sink: Box::new(sink),
            decided: 0,
        }
    }
}

impl Observer for EventObserver {
    fn on_run_start(&mut self, engine: &'static str, circuit: &Circuit, total_faults: usize) {
        (self.sink)(ProgressEvent::Started {
            engine: engine.to_string(),
            circuit: circuit.name().to_string(),
            total_faults,
        });
    }
    fn on_fault(&mut self, record: &crate::driver::FaultRecord) {
        self.decided += 1;
        (self.sink)(ProgressEvent::Fault {
            index: self.decided,
            classification: record.classification,
            by_simulation: record.by_simulation,
            sequence: record.sequence_index,
        });
    }
    fn on_sequence(&mut self, index: usize, sequence: &crate::pattern::TestSequence) {
        (self.sink)(ProgressEvent::Sequence {
            index,
            vectors: sequence.len(),
        });
    }
    fn on_progress(&mut self, decided: usize, total: usize) {
        (self.sink)(ProgressEvent::Progress { decided, total });
    }
    fn on_run_end(&mut self, report: &CircuitReport) {
        (self.sink)(ProgressEvent::Finished {
            tested: report.row.tested,
            untestable: report.row.untestable,
            aborted: report.row.aborted,
            patterns: report.row.patterns,
            sequences: report.sequences,
        });
    }
}

// ---------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------

/// A multi-circuit ATPG campaign; build with [`Campaign::builder`].
pub struct Campaign {
    circuits: Vec<(Circuit, Option<CircuitSource>)>,
    backend: Backend,
    model: Option<ModelKind>,
    sensitization: Sensitization,
    universe: FaultUniverse,
    limits: Limits,
    seed: u64,
    parallelism: usize,
    time_budget: Option<Duration>,
    artifact_dir: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
    observer: Option<Box<dyn Observer>>,
}

/// Fluent constructor for [`Campaign`].
pub struct CampaignBuilder {
    inner: Campaign,
}

impl Campaign {
    /// Starts building a campaign (no circuits yet).
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder {
            inner: Campaign {
                circuits: Vec::new(),
                backend: Backend::NonScan,
                model: None,
                sensitization: Sensitization::Robust,
                universe: FaultUniverse::default(),
                limits: Limits::default(),
                seed: 0x1995_0308,
                parallelism: 1,
                time_budget: None,
                artifact_dir: None,
                checkpoint_every: 64,
                resume: false,
                observer: None,
            },
        }
    }
}

impl CampaignBuilder {
    /// Adds one circuit.
    pub fn circuit(mut self, circuit: Circuit) -> Self {
        self.inner.circuits.push((circuit, None));
        self
    }

    /// Adds one circuit with explicit provenance (recorded in artifacts
    /// so resume rebuilds the identical circuit).
    pub fn circuit_with_source(mut self, circuit: Circuit, source: CircuitSource) -> Self {
        self.inner.circuits.push((circuit, Some(source)));
        self
    }

    /// Adds many circuits.
    pub fn circuits(mut self, circuits: impl IntoIterator<Item = Circuit>) -> Self {
        self.inner
            .circuits
            .extend(circuits.into_iter().map(|c| (c, None)));
        self
    }

    /// Adds the full benchmark suite: every Table 3 circuit plus the
    /// embedded `.bench`-sourced extras, each tagged with its suite
    /// reference (see [`gdf_netlist::suite::full_suite`]).
    pub fn suite(mut self) -> Self {
        for circuit in gdf_netlist::suite::full_suite() {
            let reference = circuit.name().trim_end_matches("_syn").to_string();
            let source = CircuitSource::suite(&circuit, &reference);
            self.inner.circuits.push((circuit, Some(source)));
        }
        self
    }

    /// Selects the backend every circuit runs (default: non-scan).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.inner.backend = backend;
        self
    }

    /// The fault model every circuit runs (default: the backend's
    /// [`Backend::default_model`]). Until PR 5 this setter took the
    /// robust/non-robust criterion; that moved to
    /// [`CampaignBuilder::sensitization`].
    pub fn model(mut self, model: ModelKind) -> Self {
        self.inner.model = Some(model);
        self
    }

    /// Robust (default) or non-robust sensitization of delay tests.
    pub fn sensitization(mut self, sensitization: Sensitization) -> Self {
        self.inner.sensitization = sensitization;
        self
    }

    /// The shared fault universe.
    pub fn universe(mut self, universe: FaultUniverse) -> Self {
        self.inner.universe = universe;
        self
    }

    /// The shared search budgets.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.inner.limits = limits;
        self
    }

    /// The shared X-fill seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// The shared generation-worker count — one pool configuration for
    /// the whole campaign (results stay byte-identical to serial).
    pub fn parallelism(mut self, n: usize) -> Self {
        self.inner.parallelism = n.max(1);
        self
    }

    /// Per-circuit wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.inner.time_budget = Some(budget);
        self
    }

    /// Persists one `<circuit>.run.json` artifact per circuit under
    /// `dir`, plus checkpoints while each circuit runs.
    pub fn artifact_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.inner.artifact_dir = Some(dir.into());
        self
    }

    /// Checkpoint cadence while a circuit runs (default 64 outcomes;
    /// only effective with [`CampaignBuilder::artifact_dir`]).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.inner.checkpoint_every = every.max(1);
        self
    }

    /// Reuses artifacts found in the artifact directory: completed
    /// circuits are loaded instead of re-run, partial checkpoints are
    /// resumed.
    pub fn resume(mut self, resume: bool) -> Self {
        self.inner.resume = resume;
        self
    }

    /// Attaches a streaming observer shared by every circuit; its
    /// `on_progress` receives **campaign-cumulative** counts.
    pub fn observer(mut self, observer: impl Observer + 'static) -> Self {
        self.inner.observer = Some(Box::new(observer));
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Campaign {
        self.inner
    }

    /// Builds and immediately runs the campaign.
    pub fn run(self) -> CampaignReport {
        self.build().run()
    }
}

/// Forwards observer callbacks to the campaign's shared observer with
/// campaign-cumulative progress.
struct AggregateObserver<'a> {
    inner: &'a mut dyn Observer,
    offset: usize,
    grand_total: usize,
}

impl Observer for AggregateObserver<'_> {
    fn on_run_start(&mut self, engine: &'static str, circuit: &Circuit, total_faults: usize) {
        self.inner.on_run_start(engine, circuit, total_faults);
    }
    fn on_fault(&mut self, record: &crate::driver::FaultRecord) {
        self.inner.on_fault(record);
    }
    fn on_sequence(&mut self, index: usize, sequence: &crate::pattern::TestSequence) {
        self.inner.on_sequence(index, sequence);
    }
    fn on_progress(&mut self, decided: usize, _total: usize) {
        self.inner
            .on_progress(self.offset + decided, self.grand_total);
    }
    fn on_run_end(&mut self, report: &CircuitReport) {
        self.inner.on_run_end(report);
    }
    fn on_checkpoint(&mut self, snapshot: &crate::engine::RunSnapshot<'_>) {
        self.inner.on_checkpoint(snapshot);
    }
    fn cancelled(&mut self) -> bool {
        self.inner.cancelled()
    }
}

/// The aggregate outcome of a [`Campaign`]: the per-circuit
/// [`CircuitReport`]s plus Table-3-style totals.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One report per circuit, in campaign order.
    pub circuits: Vec<CircuitReport>,
    /// How many circuits were satisfied from existing artifacts
    /// (loaded complete or resumed partial) rather than run from
    /// scratch.
    pub resumed: usize,
    /// `true` when the campaign stopped early (observer cancellation or
    /// a fatal artifact error, recorded in `warnings`).
    pub stopped: bool,
    /// Non-fatal trouble (artifact I/O failures, ignored artifacts).
    pub warnings: Vec<String>,
    /// Campaign wall-clock.
    pub elapsed: Duration,
}

impl CampaignReport {
    /// Sums the per-circuit rows into one `TOTAL` row.
    pub fn totals(&self) -> Table3Row {
        let mut total = Table3Row {
            circuit: "TOTAL".to_string(),
            tested: 0,
            untestable: 0,
            aborted: 0,
            patterns: 0,
            elapsed: self.elapsed,
        };
        for r in &self.circuits {
            total.tested += r.row.tested;
            total.untestable += r.row.untestable;
            total.aborted += r.row.aborted;
            total.patterns += r.row.patterns;
        }
        total
    }

    /// Sums the per-circuit coverage tallies into one campaign-wide
    /// [`Coverage`] (collapsed denominators survive only when every
    /// circuit carried them).
    pub fn coverage(&self) -> Coverage {
        let mut total = Coverage::zero(0);
        let mut it = self.circuits.iter();
        if let Some(first) = it.next() {
            total = first.coverage;
        }
        for r in it {
            total.merge(&r.coverage);
        }
        total
    }

    /// Renders the Table-3-style report: header, one row per circuit
    /// (with coverage columns), a separator, the totals row and a
    /// campaign-wide coverage summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", CircuitReport::header());
        for r in &self.circuits {
            let _ = writeln!(out, "{}", r.line());
        }
        let _ = writeln!(out, "{}", "-".repeat(CircuitReport::header().len()));
        let total = self.totals();
        let _ = writeln!(out, "{total}");
        let faults = total.total_faults().max(1);
        let _ = writeln!(
            out,
            "{} circuits, {} faults, {:.1}% tested, {:.1}% test efficiency{}",
            self.circuits.len(),
            total.total_faults(),
            100.0 * total.tested as f64 / faults as f64,
            100.0 * total.test_efficiency(),
            if self.resumed > 0 {
                format!(", {} from artifacts", self.resumed)
            } else {
                String::new()
            }
        );
        let _ = writeln!(out, "coverage: {}", self.coverage());
        for w in &self.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        out
    }
}

impl Campaign {
    fn artifact_path(dir: &Path, circuit: &Circuit) -> PathBuf {
        dir.join(format!("{}.run.json", circuit.name()))
    }

    /// Runs every circuit through the shared configuration, streaming
    /// aggregated progress to the attached observer, persisting/reusing
    /// artifacts when an artifact directory is configured.
    pub fn run(&mut self) -> CampaignReport {
        let start = Instant::now();
        let model = self.model.unwrap_or_else(|| self.backend.default_model());
        let config = crate::engine::RunConfig {
            backend: self.backend,
            model,
            sensitization: self.sensitization,
            universe: self.universe,
            limits: self.limits,
            seed: self.seed,
        };
        let totals: Vec<usize> = self
            .circuits
            .iter()
            .map(|(c, _)| faults_of(c, model, &self.universe).len())
            .collect();
        let grand_total: usize = totals.iter().sum();
        let mut report = CampaignReport {
            circuits: Vec::new(),
            resumed: 0,
            stopped: false,
            warnings: Vec::new(),
            elapsed: Duration::ZERO,
        };
        let mut offset = 0usize;

        for (i, (circuit, source)) in self.circuits.iter().enumerate() {
            let path = self
                .artifact_dir
                .as_ref()
                .map(|dir| Self::artifact_path(dir, circuit));

            // Reuse existing artifacts when resuming — but only ones
            // recorded under *this* campaign's exact configuration; a
            // stale artifact from a different backend/seed/universe must
            // not masquerade as this campaign's result.
            let mut resume_artifact = None;
            if self.resume {
                if let Some(path) = &path {
                    if path.exists() {
                        match RunArtifact::load(path) {
                            Ok(artifact) if artifact.config() != config => {
                                report.warnings.push(format!(
                                    "{}: ignoring artifact with a different configuration",
                                    circuit.name()
                                ));
                            }
                            Ok(artifact) if !artifact.partial => match artifact.to_run(circuit) {
                                Ok(run) => {
                                    report.circuits.push(run.report);
                                    report.resumed += 1;
                                    offset += totals[i];
                                    continue;
                                }
                                Err(e) => report
                                    .warnings
                                    .push(format!("{}: ignoring artifact: {e}", circuit.name())),
                            },
                            Ok(artifact) => resume_artifact = Some(artifact),
                            Err(e) => report
                                .warnings
                                .push(format!("{}: ignoring artifact: {e}", circuit.name())),
                        }
                    }
                }
            }

            // The one place the per-circuit builder is assembled; the
            // resume-failure fallback below reuses it so the two paths
            // can never diverge (e.g. silently dropping the time budget).
            let make_builder = || {
                let mut b = Atpg::builder(circuit)
                    .backend(self.backend)
                    .model(model)
                    .sensitization(self.sensitization)
                    .universe(self.universe)
                    .limits(self.limits)
                    .seed(self.seed)
                    .parallelism(self.parallelism);
                if let Some(budget) = self.time_budget {
                    b = b.time_budget(budget);
                }
                b
            };
            let mut builder = make_builder();
            let mut resumed_this = false;
            if let Some(artifact) = &resume_artifact {
                match builder.resume_from(artifact) {
                    Ok(b) => {
                        builder = b;
                        resumed_this = true;
                    }
                    Err(e) => {
                        report
                            .warnings
                            .push(format!("{}: cannot resume: {e}", circuit.name()));
                        builder = make_builder();
                    }
                }
            }
            if let Some(observer) = self.observer.as_deref_mut() {
                builder = builder.observer(AggregateObserver {
                    inner: observer,
                    offset,
                    grand_total,
                });
            }
            let effective_source = source.clone().unwrap_or_else(|| CircuitSource::of(circuit));
            if let Some(path) = &path {
                builder = builder.observer(
                    Checkpointer::new(path, self.checkpoint_every)
                        .with_source(effective_source.clone()),
                );
            }

            let run = builder.build().run();
            if resumed_this {
                report.resumed += 1;
            }

            if let Some(path) = &path {
                if run.stopped.is_none() {
                    let artifact =
                        RunArtifact::from_run(circuit, &run, config, Some(effective_source));
                    if let Err(e) = artifact.save(path) {
                        report
                            .warnings
                            .push(format!("{}: artifact save failed: {e}", circuit.name()));
                    }
                }
            }

            let cancelled = run.stopped == Some(AtpgError::Cancelled);
            report.circuits.push(run.report);
            offset += totals[i];
            if cancelled {
                // The observer asked to stop; the remaining circuits
                // would be cancelled immediately anyway.
                report.stopped = true;
                break;
            }
        }

        report.elapsed = start.elapsed();
        report
    }
}

// ---------------------------------------------------------------------
// Pattern re-grading
// ---------------------------------------------------------------------

/// Result of re-grading a [`PatternSet`] against a fault universe.
#[derive(Debug, Clone, PartialEq)]
pub struct GradeReport {
    /// Circuit name.
    pub circuit: String,
    /// The fault model the patterns were graded against.
    pub model: ModelKind,
    /// Size of the graded fault universe.
    pub total_faults: usize,
    /// Per fault (universe enumeration order): the index of the first
    /// pattern that detects it, or `None` if no pattern does.
    pub first_detector: Vec<Option<usize>>,
    /// Patterns that were graded (at-speed sequences).
    pub patterns_graded: usize,
    /// Patterns skipped because they are all-slow static sequences
    /// (stuck-at exports carry no launch/capture pair to grade).
    pub skipped_static: usize,
}

impl GradeReport {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.first_detector.iter().filter(|d| d.is_some()).count()
    }

    /// Detected / total, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            0.0
        } else {
            self.detected() as f64 / self.total_faults as f64
        }
    }
}

impl std::fmt::Display for GradeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}/{} {} faults detected ({:.1}%) by {} patterns",
            self.circuit,
            self.detected(),
            self.total_faults,
            self.model,
            100.0 * self.coverage(),
            self.patterns_graded,
        )?;
        if self.skipped_static > 0 {
            write!(f, " ({} static patterns skipped)", self.skipped_static)?;
        }
        Ok(())
    }
}

/// Re-grades a saved [`PatternSet`] against `model`'s faults over
/// `universe` on `circuit`, using the packed three-phase fault simulator
/// with the §5 semantics of the generating run (including each pattern's
/// recorded relied-PPO invalidation check). Faults already detected by
/// an earlier pattern are dropped from later sweeps, mirroring the
/// ATPG's own fault-dropping order.
///
/// `model` may be [`ModelKind::Delay`] (robust classification) or
/// [`ModelKind::Transition`] (non-robust final-value classification) —
/// the same at-speed pattern set can be graded under both, which is how
/// a robust test set's transition coverage is measured. Stuck-at
/// patterns carry no launch/capture pair, so [`ModelKind::Stuck`] is
/// rejected.
///
/// `seed` drives the random fill of X values and uninitialized state
/// bits, exactly as in generation.
///
/// # Errors
///
/// [`ArtifactError::Mismatch`] when the pattern set names a different
/// circuit, references signals the circuit does not have, or asks for
/// the stuck-at model.
///
/// # Example
///
/// ```
/// use gdf_core::artifact::PatternSet;
/// use gdf_core::engine::Atpg;
/// use gdf_core::session::grade_patterns;
/// use gdf_netlist::{suite, FaultUniverse, ModelKind};
///
/// let c = suite::s27();
/// let run = Atpg::builder(&c).build().run();
/// let set = PatternSet::from_run(&c, &run, "non-scan", 0x1995_0308, None);
/// let universe = FaultUniverse::default();
/// let grade =
///     grade_patterns(&c, &set, ModelKind::Delay, &universe, 0x1995_0308).unwrap();
/// // The saved patterns re-detect faults on their own.
/// assert!(grade.detected() > 0);
/// // The same patterns detect at least as many transition faults.
/// let tf = grade_patterns(&c, &set, ModelKind::Transition, &universe, 0x1995_0308)
///     .unwrap();
/// assert!(tf.detected() >= grade.detected());
/// ```
pub fn grade_patterns(
    circuit: &Circuit,
    set: &PatternSet,
    model: ModelKind,
    universe: &FaultUniverse,
    seed: u64,
) -> Result<GradeReport, ArtifactError> {
    if set.circuit.name != circuit.name() {
        return Err(ArtifactError::Mismatch(format!(
            "pattern set is for circuit `{}`, grading `{}`",
            set.circuit.name,
            circuit.name()
        )));
    }
    if model == ModelKind::Stuck {
        return Err(ArtifactError::Mismatch(
            "stuck-at faults have no launch/capture semantics to grade patterns against \
             (grade delay or transition)"
                .into(),
        ));
    }
    let faults: Vec<Fault> = model.model().enumerate(circuit, universe).collect();
    let driver = DelayAtpg::with_config(
        circuit,
        DelayAtpgConfig::new()
            .with_model(model)
            .with_universe(*universe),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = FsimScratch::default();
    let mut first_detector: Vec<Option<usize>> = vec![None; faults.len()];
    let mut remaining: Vec<usize> = (0..faults.len()).collect();
    let mut patterns_graded = 0usize;
    let mut skipped_static = 0usize;

    for (pi, pattern) in set.patterns.iter().enumerate() {
        if pattern.sequence.at_speed().is_none() {
            skipped_static += 1;
            continue;
        }
        if remaining.is_empty() {
            patterns_graded += 1;
            continue;
        }
        let relied = set.relied_nodes(circuit, pi)?;
        let hits = match model {
            ModelKind::Transition => {
                let candidates: Vec<_> = remaining
                    .iter()
                    .map(|&k| faults[k].as_transition().expect("transition universe"))
                    .collect();
                driver.fault_simulate_sequence_transition(
                    &pattern.sequence,
                    &relied,
                    &candidates,
                    &mut rng,
                    &mut scratch,
                )
            }
            _ => {
                let candidates: Vec<_> = remaining
                    .iter()
                    .map(|&k| faults[k].as_delay().expect("delay universe"))
                    .collect();
                driver.fault_simulate_sequence(
                    &pattern.sequence,
                    &relied,
                    &candidates,
                    &mut rng,
                    &mut scratch,
                )
            }
        }
        .expect("at_speed checked above");
        patterns_graded += 1;
        // Strike detected faults from the remaining list (descending
        // positions so removal indexes stay valid).
        let mut hit_positions: Vec<usize> = hits;
        hit_positions.sort_unstable();
        for &pos in hit_positions.iter().rev() {
            let fault_index = remaining.remove(pos);
            first_detector[fault_index] = Some(pi);
        }
    }

    Ok(GradeReport {
        circuit: circuit.name().to_string(),
        model,
        total_faults: faults.len(),
        first_detector,
        patterns_graded,
        skipped_static,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::FaultClassification;
    use gdf_netlist::suite;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gdf-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpointer_writes_resumable_artifacts() {
        let dir = temp_dir("ckpt");
        let path = dir.join("s27.run.json");
        let c = suite::s27();
        let run = Atpg::builder(&c)
            .backend(Backend::StuckAt)
            .checkpoint(&path, 4)
            .build()
            .run();
        assert!(path.exists(), "checkpoint file written");
        let artifact = RunArtifact::load(&path).unwrap();
        assert!(artifact.partial);
        assert!(artifact.decided() > 0);
        assert!(artifact.decided() <= run.records.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_resume_rejects_foreign_configuration() {
        // An artifact recorded under a different backend/seed must not be
        // passed off as this campaign's result: the circuit re-runs and a
        // warning names the ignored artifact.
        let dir = temp_dir("campcfg");
        let stuck = Campaign::builder()
            .backend(Backend::StuckAt)
            .circuit(suite::s27())
            .artifact_dir(&dir)
            .run();
        assert_eq!(stuck.resumed, 0);
        let other = Campaign::builder()
            .backend(Backend::StuckAt)
            .seed(99)
            .circuit(suite::s27())
            .artifact_dir(&dir)
            .resume(true)
            .run();
        assert_eq!(other.resumed, 0, "foreign-config artifact not reused");
        assert!(
            other
                .warnings
                .iter()
                .any(|w| w.contains("different configuration")),
            "{:?}",
            other.warnings
        );
        // Same configuration again: now it does reuse the fresh artifact.
        let same = Campaign::builder()
            .backend(Backend::StuckAt)
            .seed(99)
            .circuit(suite::s27())
            .artifact_dir(&dir)
            .resume(true)
            .run();
        assert_eq!(same.resumed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_aggregates_and_persists() {
        let dir = temp_dir("camp");
        let circuits = || {
            vec![
                suite::s27(),
                suite::extra_circuit("s42").expect("embedded s42"),
            ]
        };
        struct Count(Arc<AtomicUsize>);
        impl Observer for Count {
            fn on_progress(&mut self, decided: usize, total: usize) {
                assert!(decided <= total, "campaign-cumulative progress");
                self.0.store(decided, Ordering::Relaxed);
            }
        }
        let seen = Arc::new(AtomicUsize::new(0));
        let report = Campaign::builder()
            .backend(Backend::StuckAt)
            .circuits(circuits())
            .artifact_dir(&dir)
            .checkpoint_every(8)
            .observer(Count(Arc::clone(&seen)))
            .run();
        assert_eq!(report.circuits.len(), 2);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        let totals = report.totals();
        assert_eq!(
            seen.load(Ordering::Relaxed),
            totals.total_faults() as usize,
            "final cumulative progress covers every fault in the campaign"
        );
        assert!(report.render().contains("TOTAL"));

        // Second run resumes entirely from artifacts and matches.
        let rerun = Campaign::builder()
            .backend(Backend::StuckAt)
            .circuits(circuits())
            .artifact_dir(&dir)
            .resume(true)
            .run();
        assert_eq!(rerun.resumed, 2);
        for (a, b) in report.circuits.iter().zip(&rerun.circuits) {
            assert_eq!(a.row.normalized(), b.row.normalized());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grading_recovers_most_generated_detections_deterministically() {
        // Re-grading replays the same packed simulator and invalidation
        // semantics, but with a fresh RNG stream for the X-fill, so the
        // exact detection set may differ from the generating run's credit
        // pass. It must still be deterministic for a fixed seed and
        // recover the bulk of the generated coverage (the explicitly
        // targeted tests only rely on their justified, non-X bits).
        let c = suite::s27();
        let seed = 0x1995_0308;
        let run = Atpg::builder(&c).seed(seed).build().run();
        let set = PatternSet::from_run(&c, &run, "non-scan", seed, None);
        let grade =
            grade_patterns(&c, &set, ModelKind::Delay, &FaultUniverse::default(), seed).unwrap();
        assert_eq!(grade.total_faults, run.records.len());
        let tested = run
            .records
            .iter()
            .filter(|r| r.classification == FaultClassification::Tested)
            .count();
        assert!(
            2 * grade.detected() >= tested,
            "grading found {} of {} generated detections",
            grade.detected(),
            tested
        );
        let again =
            grade_patterns(&c, &set, ModelKind::Delay, &FaultUniverse::default(), seed).unwrap();
        assert_eq!(again, grade, "grading is deterministic per seed");
    }

    #[test]
    fn grading_rejects_wrong_circuit() {
        let c = suite::s27();
        let other = suite::extra_circuit("s42").unwrap();
        let run = Atpg::builder(&c).build().run();
        let set = PatternSet::from_run(&c, &run, "non-scan", 1, None);
        assert!(matches!(
            grade_patterns(&other, &set, ModelKind::Delay, &FaultUniverse::default(), 1),
            Err(ArtifactError::Mismatch(_))
        ));
    }
}
