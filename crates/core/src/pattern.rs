//! Test-sequence assembly with the clock schedule of Figure 2.
//!
//! A complete test for one gate delay fault is a vector sequence
//! `init… , V1, V2(fast), prop…`: synchronizing vectors and propagation
//! vectors run with a **slow** clock (the circuit behaves fault-free), the
//! single test frame launches `V1 → V2` and samples at the **fast**
//! (rated) clock, where the delay fault can corrupt the sampled values.

use gdf_algebra::logic3::Logic3;
use std::fmt;

/// Clock speed of one time frame (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockSpeed {
    /// Relaxed clock: even a delay-faulty circuit settles correctly.
    Slow,
    /// Rated clock: a delay fault of realistic size corrupts the sampled
    /// value.
    Fast,
}

impl fmt::Display for ClockSpeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockSpeed::Slow => f.write_str("slow"),
            ClockSpeed::Fast => f.write_str("fast"),
        }
    }
}

/// One applied PI vector together with its capture-clock speed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedVector {
    /// The primary-input values (`X` = don't-care, filled before tester
    /// application).
    pub pi: Vec<Logic3>,
    /// The clock speed at which the frame's result is captured.
    pub clock: ClockSpeed,
}

/// A complete per-fault test sequence.
///
/// # Example
///
/// ```
/// use gdf_algebra::Logic3;
/// use gdf_core::pattern::{ClockSpeed, TestSequence};
///
/// let seq = TestSequence::new(
///     vec![vec![Logic3::Zero]],            // init
///     vec![Logic3::Zero],                  // V1
///     vec![Logic3::One],                   // V2 (fast frame)
///     vec![vec![Logic3::X]],               // propagation
/// );
/// assert_eq!(seq.len(), 4);
/// assert_eq!(seq.fast_frame_index(), 2);
/// assert_eq!(seq.vectors()[2].clock, ClockSpeed::Fast);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSequence {
    vectors: Vec<TimedVector>,
    /// `Some(i)` for an at-speed two-pattern test whose capture frame is
    /// `i`; `None` for an all-slow (static-fault) sequence.
    fast_index: Option<usize>,
}

impl TestSequence {
    /// Assembles `init… , V1, V2(fast), prop…`.
    pub fn new(
        init: Vec<Vec<Logic3>>,
        v1: Vec<Logic3>,
        v2: Vec<Logic3>,
        propagation: Vec<Vec<Logic3>>,
    ) -> Self {
        let mut vectors = Vec::with_capacity(init.len() + 2 + propagation.len());
        for v in init {
            vectors.push(TimedVector {
                pi: v,
                clock: ClockSpeed::Slow,
            });
        }
        vectors.push(TimedVector {
            pi: v1,
            clock: ClockSpeed::Slow,
        });
        let fast_index = vectors.len();
        vectors.push(TimedVector {
            pi: v2,
            clock: ClockSpeed::Fast,
        });
        for v in propagation {
            vectors.push(TimedVector {
                pi: v,
                clock: ClockSpeed::Slow,
            });
        }
        TestSequence {
            vectors,
            fast_index: Some(fast_index),
        }
    }

    /// Assembles an all-slow sequence for a *static* fault (the unified
    /// engine's stuck-at backend): every frame is applied and captured at
    /// the relaxed clock, so there is no launch/capture pair.
    ///
    /// [`Self::at_speed`] returns `None` for such sequences, and the
    /// frame-role accessors ([`Self::init_len`], [`Self::propagation_len`])
    /// report zero.
    pub fn static_sequence(vectors: Vec<Vec<Logic3>>) -> Self {
        TestSequence {
            vectors: vectors
                .into_iter()
                .map(|pi| TimedVector {
                    pi,
                    clock: ClockSpeed::Slow,
                })
                .collect(),
            fast_index: None,
        }
    }

    /// `Some(index of the fast frame)` for an at-speed two-pattern test,
    /// `None` for an all-slow static sequence.
    pub fn at_speed(&self) -> Option<usize> {
        self.fast_index
    }

    /// All frames in application order.
    pub fn vectors(&self) -> &[TimedVector] {
        &self.vectors
    }

    /// Number of frames (this is what the paper's `#pat` column counts:
    /// "includes the patterns needed for initialization and propagation").
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the sequence is empty (never true for assembled tests).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Index of the fast (at-speed) frame.
    ///
    /// # Panics
    ///
    /// Panics for all-slow static sequences (see [`Self::at_speed`] for
    /// the non-panicking accessor).
    pub fn fast_frame_index(&self) -> usize {
        self.fast_index
            .expect("static sequences have no fast frame; check at_speed() first")
    }

    /// Number of initialization frames before `V1` (zero for static
    /// sequences, which have no frame roles).
    pub fn init_len(&self) -> usize {
        self.fast_index.map_or(0, |i| i - 1)
    }

    /// Number of propagation frames after the fast frame (zero for static
    /// sequences).
    pub fn propagation_len(&self) -> usize {
        self.fast_index.map_or(0, |i| self.vectors.len() - i - 1)
    }

    /// The `(V1, V2)` pair of the launch/capture frames.
    ///
    /// # Panics
    ///
    /// Panics for all-slow static sequences.
    pub fn test_pair(&self) -> (&[Logic3], &[Logic3]) {
        let fast = self.fast_frame_index();
        (&self.vectors[fast - 1].pi, &self.vectors[fast].pi)
    }

    /// Replaces every `X` with values drawn from `fill` (deterministic
    /// X-fill; the paper sets leftover don't-cares randomly before fault
    /// simulation).
    pub fn filled_with(&self, fill: impl FnMut() -> bool) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        self.fill_into(fill, &mut out);
        out
    }

    /// Allocation-reusing variant of [`TestSequence::filled_with`]: writes
    /// the filled frames into `dst`, keeping the inner frame buffers'
    /// capacity. `fill` is consumed in the same order (frame by frame,
    /// input by input), so RNG-driven X-fill draws identically.
    pub fn fill_into(&self, mut fill: impl FnMut() -> bool, dst: &mut Vec<Vec<bool>>) {
        dst.truncate(self.vectors.len());
        while dst.len() < self.vectors.len() {
            dst.push(Vec::new());
        }
        for (frame, tv) in dst.iter_mut().zip(&self.vectors) {
            frame.clear();
            frame.extend(tv.pi.iter().map(|l| l.to_bool().unwrap_or_else(&mut fill)));
        }
    }
}

impl fmt::Display for TestSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, tv) in self.vectors.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            for l in &tv.pi {
                write!(f, "{l}")?;
            }
            write!(f, "/{}", tv.clock)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic3::{One, Zero, X};

    #[test]
    fn assembly_and_indexing() {
        let seq = TestSequence::new(
            vec![vec![Zero, One], vec![One, One]],
            vec![Zero, Zero],
            vec![One, Zero],
            vec![vec![X, X]],
        );
        assert_eq!(seq.len(), 5);
        assert_eq!(seq.init_len(), 2);
        assert_eq!(seq.propagation_len(), 1);
        assert_eq!(seq.fast_frame_index(), 3);
        assert_eq!(seq.vectors()[3].clock, ClockSpeed::Fast);
        assert!(seq
            .vectors()
            .iter()
            .enumerate()
            .all(|(i, tv)| (tv.clock == ClockSpeed::Fast) == (i == 3)));
        let (v1, v2) = seq.test_pair();
        assert_eq!(v1, &[Zero, Zero]);
        assert_eq!(v2, &[One, Zero]);
    }

    #[test]
    fn fill_replaces_only_x() {
        let seq = TestSequence::new(vec![], vec![X, One], vec![Zero, X], vec![]);
        let filled = seq.filled_with(|| true);
        assert_eq!(filled, vec![vec![true, true], vec![false, true]]);
    }

    #[test]
    fn static_sequence_has_no_fast_frame() {
        let seq = TestSequence::static_sequence(vec![vec![Zero, One], vec![One, X]]);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.at_speed(), None);
        assert_eq!(seq.init_len(), 0);
        assert_eq!(seq.propagation_len(), 0);
        assert!(seq.vectors().iter().all(|tv| tv.clock == ClockSpeed::Slow));
        let filled = seq.filled_with(|| false);
        assert_eq!(filled, vec![vec![false, true], vec![true, false]]);
    }

    #[test]
    fn display_shows_clocks() {
        let seq = TestSequence::new(vec![], vec![Zero], vec![One], vec![]);
        let text = seq.to_string();
        assert!(text.contains("/slow"));
        assert!(text.contains("/fast"));
    }
}
