//! Hand-rolled content digests over canonical encodings.
//!
//! The store ([`gdf-store`]) keys objects by the digest of their
//! canonical text, and the result cache keys entries by
//! `(circuit digest, config digest)` — both need a digest that is
//! deterministic across processes and platforms, cheap, and wide enough
//! that distinct artifacts practically never collide. No external crypto
//! crates exist in this workspace, so the digest is built from two
//! independently keyed **SipHash-2-4** passes (128 bits total), with
//! **FNV-1a** kept alongside as the cheap single-word mixer the bloom
//! filter and the tests use.
//!
//! SipHash-2-4 here is the reference construction (SipRound with 2
//! compression and 4 finalization rounds); the two fixed keys are
//! arbitrary but frozen — changing them would invalidate every stored
//! object address, exactly like changing a schema version.
//!
//! [`gdf-store`]: ../../gdf_store/index.html

use std::fmt;
use std::str::FromStr;

/// 64-bit FNV-1a over `bytes` — the classic offset basis / prime pair.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Keyed SipHash-2-4 over `bytes` (the reference 64-bit construction).
pub fn siphash24(k0: u64, k1: u64, bytes: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    // Final block: remaining bytes plus the length in the top byte.
    let rest = chunks.remainder();
    let mut last = (bytes.len() as u64 & 0xff) << 56;
    for (i, &b) in rest.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// The two frozen store keys: two independent SipHash-2-4 instances make
/// the 128-bit content address. Arbitrary constants, fixed forever (they
/// are part of the on-disk address format).
const KEY_A: (u64, u64) = (0x6764_665f_7374_6f72, 0x655f_6b65_795f_6131);
const KEY_B: (u64, u64) = (0x1995_0308_da7e_ba5e, 0xb10f_11e5_0f5e_ed42);

/// A 128-bit content digest, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest {
    /// SipHash-2-4 under the first frozen key.
    pub a: u64,
    /// SipHash-2-4 under the second frozen key.
    pub b: u64,
}

impl Digest {
    /// Digests arbitrary bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        Digest {
            a: siphash24(KEY_A.0, KEY_A.1, bytes),
            b: siphash24(KEY_B.0, KEY_B.1, bytes),
        }
    }

    /// Digests a canonical text encoding.
    pub fn of_text(text: &str) -> Self {
        Self::of_bytes(text.as_bytes())
    }

    /// The 32-hex-digit rendering — the object's store address.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.a, self.b)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.a, self.b)
    }
}

/// Parse error of [`Digest::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestParseError(pub String);

impl fmt::Display for DigestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad digest `{}`: expected 32 hex digits", self.0)
    }
}

impl std::error::Error for DigestParseError {}

impl FromStr for Digest {
    type Err = DigestParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(DigestParseError(s.to_string()));
        }
        let a = u64::from_str_radix(&s[..16], 16).map_err(|_| DigestParseError(s.to_string()))?;
        let b = u64::from_str_radix(&s[16..], 16).map_err(|_| DigestParseError(s.to_string()))?;
        Ok(Digest { a, b })
    }
}

/// Digest of a [`RunConfig`](crate::engine::RunConfig)'s canonical
/// encoding — the flat [`encode_config`](crate::artifact::encode_config)
/// field list rendered as one JSON object. Two configs digest equal iff
/// they encode equal, which is exactly the cache's correctness
/// requirement: the encoding round-trips every field that can reach the
/// generated bytes.
pub fn config_digest(config: &crate::engine::RunConfig) -> Digest {
    let text = crate::json::Json::Obj(crate::artifact::encode_config(config)).pretty();
    Digest::of_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Backend, RunConfig};

    #[test]
    fn siphash24_matches_reference_vector() {
        // The reference test vector from the SipHash paper: key
        // 000102…0f, message 000102…0e -> 0xa129ca6149be45e5.
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let msg: Vec<u8> = (0u8..15).collect();
        assert_eq!(siphash24(k0, k1, &msg), 0xa129_ca61_49be_45e5);
    }

    #[test]
    fn fnv1a64_known_values() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn digest_round_trips_through_hex() {
        let d = Digest::of_text("the quick brown fox");
        let back: Digest = d.hex().parse().unwrap();
        assert_eq!(back, d);
        assert_eq!(d.hex().len(), 32);
    }

    #[test]
    fn hostile_digest_strings_are_rejected() {
        for bad in ["", "zz", "0123", &"0".repeat(31), &"g".repeat(32), "../x"] {
            assert!(bad.parse::<Digest>().is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn config_digest_separates_distinct_configs() {
        let base = RunConfig::new(Backend::NonScan);
        let seeded = base.with_seed(99);
        assert_eq!(config_digest(&base), config_digest(&base));
        assert_ne!(config_digest(&base), config_digest(&seeded));
        assert_ne!(
            config_digest(&base),
            config_digest(&RunConfig::new(Backend::StuckAt))
        );
    }
}
