//! The phase-timing facade — the engine's narrow seam for profiling,
//! modeled on the [`crate::io`] artifact-I/O facade.
//!
//! Hot paths in the orchestrator and the fault-simulation driver mark
//! their stages (`generate`, `credit`, `fill`, `fsim`, `checkpoint`, …)
//! by opening a [`PhaseSpan`]. With no sink installed — the default —
//! [`start`] is one relaxed atomic load and the span is inert: no clock
//! read, no allocation, nothing. An observability layer (`gdf-obs` via
//! `gdf-serve`) installs a process-global [`PhaseSink`] to receive
//! `(phase, start, duration)` triples, which it folds into histograms
//! and per-job traces.
//!
//! Nothing recorded here can reach a canonical artifact: the facade
//! only *observes* wall time, and every consumer keeps its output in
//! side-channel documents (`/metrics`, `traces/`). The determinism
//! invariants (serial ≡ parallel ≡ resumed ≡ served ≡ fleet) hold with
//! any sink installed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Receiver of phase timings. Implementations must be cheap and
/// panic-free: they run inside the engine's merge loop.
pub trait PhaseSink: Send + Sync {
    /// One completed phase: its name, when it started, how long it ran.
    fn record(&self, phase: &'static str, started: Instant, duration: Duration);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn PhaseSink>>> = RwLock::new(None);

/// Installs the process-global phase sink.
pub fn set_phase_sink(sink: Arc<dyn PhaseSink>) {
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the sink; [`start`] returns to its one-atomic-load fast
/// path.
pub fn reset_phase_sink() {
    ENABLED.store(false, Ordering::Release);
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a sink is installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// An in-flight phase measurement; records to the sink on drop. Inert
/// (no clock was even read) when no sink is installed.
#[must_use = "the span records on drop; binding it to `_` drops immediately"]
pub struct PhaseSpan {
    phase: &'static str,
    started: Option<Instant>,
}

/// Opens a span over the phase named `phase`.
#[inline]
pub fn start(phase: &'static str) -> PhaseSpan {
    PhaseSpan {
        phase,
        started: enabled().then(Instant::now),
    }
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let sink = SINK.read().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(sink) = sink {
            sink.record(self.phase, started, started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Collect(Mutex<Vec<(&'static str, Duration)>>);

    impl PhaseSink for Collect {
        fn record(&self, phase: &'static str, _started: Instant, duration: Duration) {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((phase, duration));
        }
    }

    #[test]
    fn spans_are_inert_without_a_sink_and_record_with_one() {
        reset_phase_sink();
        {
            let span = start("idle");
            assert!(span.started.is_none(), "no clock read when disabled");
        }
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        set_phase_sink(sink.clone());
        {
            let _span = start("fill");
        }
        reset_phase_sink();
        {
            let _span = start("after");
        }
        let got = sink.0.lock().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "fill");
    }
}
