//! Shard artifacts — the unit of *distributed* speculation.
//!
//! The engine's fault-parallel orchestration rests on one fact: per-fault
//! generation is a **pure function of the fault**, while everything
//! stateful (classification order, fault-simulation credit, the X-fill
//! credit-RNG stream) runs on the merge thread in fault-list order. The
//! in-process form fans generation out to wave threads; this module is
//! the same contract stretched across machines:
//!
//! * a [`ShardArtifact`] records the pure generation outcomes for one
//!   contiguous fault-universe range `[lo, hi)` of one configuration —
//!   computed anywhere ([`ShardArtifact::run`] is what a `gdf serve`
//!   shard job executes), serialized like every other artifact
//!   (schema-versioned JSON, byte-stable encoding);
//! * [`merge_artifact`] recombines shards: it assembles a speculation
//!   table indexed by universe position and replays the deterministic
//!   merge through [`AtpgBuilder::speculation`] — credit passes and the
//!   RNG stream run *here*, exactly as a single-node run would execute
//!   them, so the merged [`RunArtifact`] is **byte-identical in
//!   canonical encoding to a single-node run** of the same config/seed.
//!
//! The credit-RNG contract per shard, explicitly: **shards never touch
//! the RNG**. A shard job consumes zero credit-RNG draws and performs no
//! fault dropping — it only targets faults. The single RNG stream is
//! consumed by whoever merges (coordinator or local run), in fault-list
//! order, which is what makes `fleet(N) ≡ fleet(1) ≡ local` hold bit for
//! bit. Outcomes for faults the merge's credit pass drops are simply
//! never consumed — bounded wasted speculation, the same trade the
//! in-process wave workers make.
//!
//! [`AtpgBuilder::speculation`]: crate::engine::AtpgBuilder::speculation

use crate::artifact::{
    decode_config, decode_outcome, encode_config, encode_outcome, schema, str_field, usize_field,
    write_atomic, ArtifactError, CircuitSource, RunArtifact,
};
use crate::engine::{Atpg, AtpgError, FaultOutcome, RunConfig};
use crate::json::{Json, ParseLimits};
use gdf_netlist::{Circuit, Fault};
use std::path::Path;

/// Current shard-artifact schema version.
pub const SHARD_VERSION: u32 = 1;

/// Oldest schema version [`ShardArtifact::decode`] still reads.
pub const SHARD_VERSION_MIN: u32 = 1;

/// The pure generation outcomes for one fault-universe range `[lo, hi)`
/// under one configuration — a resumable, serializable work unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardArtifact {
    config: RunConfig,
    circuit: CircuitSource,
    lo: usize,
    hi: usize,
    /// Size of the *full* universe the range indexes into, recorded so a
    /// merge can reject shards cut from a different enumeration.
    total: usize,
    /// Outcome per range position (`outcomes[k]` is universe index
    /// `lo + k`); `None` while not yet computed. Filled strictly
    /// front-to-back, so a partial shard resumes at its first hole.
    outcomes: Vec<Option<FaultOutcome>>,
}

impl ShardArtifact {
    /// An empty shard for universe indexes `[lo, hi)` of `config`'s
    /// fault universe over `circuit`.
    ///
    /// # Errors
    ///
    /// Rejects a range that does not fit the enumerated universe.
    pub fn new(
        circuit: &Circuit,
        source: Option<CircuitSource>,
        config: RunConfig,
        lo: usize,
        hi: usize,
    ) -> Result<Self, ArtifactError> {
        let total = config
            .model
            .model()
            .enumerate(circuit, &config.universe)
            .len();
        if lo > hi || hi > total {
            return Err(ArtifactError::Mismatch(format!(
                "shard range [{lo}‥{hi}) does not fit a universe of {total} faults"
            )));
        }
        Ok(ShardArtifact {
            config,
            circuit: source.unwrap_or_else(|| CircuitSource::of(circuit)),
            lo,
            hi,
            total,
            outcomes: vec![None; hi - lo],
        })
    }

    /// The configuration the outcomes were generated under.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// How the circuit is referenced (for re-resolution elsewhere).
    pub fn source(&self) -> &CircuitSource {
        &self.circuit
    }

    /// The `[lo, hi)` universe range this shard covers.
    pub fn range(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Size of the full universe the range was cut from.
    pub fn universe_len(&self) -> usize {
        self.total
    }

    /// Number of faults in the range.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Outcomes computed so far (outcomes fill front-to-back).
    pub fn decided(&self) -> usize {
        self.outcomes.iter().take_while(|o| o.is_some()).count()
    }

    /// Whether every fault in the range has an outcome.
    pub fn is_complete(&self) -> bool {
        self.decided() == self.len()
    }

    /// Targets every remaining fault of the range, front to back: the
    /// shard-job work loop. Generation is pure per fault and consumes
    /// **no** credit-RNG draws, so two executions of the same range — on
    /// any machine, after any number of interruptions — produce the same
    /// outcomes.
    ///
    /// `on_step` runs after every computed outcome with the shard's
    /// current state (checkpoint hook); returning `false` stops the loop
    /// early, leaving a resumable partial shard. Returns whether the
    /// shard ran to completion.
    pub fn run(
        &mut self,
        circuit: &Circuit,
        mut on_step: impl FnMut(&ShardArtifact) -> bool,
    ) -> Result<bool, AtpgError> {
        let config = self.config;
        config.validate()?;
        let mut engine = Atpg::builder(circuit)
            .backend(config.backend)
            .model(config.model)
            .sensitization(config.sensitization)
            .universe(config.universe)
            .limits(config.limits)
            .seed(config.seed)
            .try_build()?;
        let faults: Vec<Fault> = engine.faults()[self.lo..self.hi].to_vec();
        for (k, &fault) in faults.iter().enumerate().skip(self.decided()) {
            let outcome = engine.target(fault)?;
            self.outcomes[k] = Some(outcome);
            if !on_step(self) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Encodes the shard as a schema-versioned JSON document. Node
    /// references (observed POs, relied PPOs) are recorded by signal
    /// name against `circuit`, like every other artifact.
    pub fn encode(&self, circuit: &Circuit) -> String {
        let mut fields = vec![
            ("schema".into(), Json::Str("gdf-shard".into())),
            ("version".into(), Json::Num(SHARD_VERSION as f64)),
            ("circuit".into(), self.circuit.encode()),
        ];
        fields.extend(encode_config(&self.config));
        fields.push(("lo".into(), Json::Num(self.lo as f64)));
        fields.push(("hi".into(), Json::Num(self.hi as f64)));
        fields.push(("universe_len".into(), Json::Num(self.total as f64)));
        fields.push((
            "outcomes".into(),
            Json::Arr(
                self.outcomes
                    .iter()
                    .map(|o| match o {
                        None => Json::Null,
                        Some(outcome) => encode_outcome(outcome, circuit),
                    })
                    .collect(),
            ),
        ));
        let mut text = Json::Obj(fields).to_string();
        text.push('\n');
        text
    }

    /// Decodes a document written by [`ShardArtifact::encode`],
    /// resolving signal names against `circuit`.
    pub fn decode(text: &str, circuit: &Circuit) -> Result<Self, ArtifactError> {
        let j =
            Json::parse_with_limits(text, ParseLimits::network()).map_err(ArtifactError::Json)?;
        if str_field(&j, "schema")? != "gdf-shard" {
            return Err(schema("not a gdf-shard document"));
        }
        let version = usize_field(&j, "version")? as u32;
        if !(SHARD_VERSION_MIN..=SHARD_VERSION).contains(&version) {
            return Err(schema(format!(
                "unsupported shard version {version} (supported: \
                 {SHARD_VERSION_MIN}..={SHARD_VERSION})"
            )));
        }
        let source = CircuitSource::decode(
            j.get("circuit")
                .ok_or_else(|| schema("missing `circuit`"))?,
        )?;
        if source.name != circuit.name() {
            return Err(ArtifactError::Mismatch(format!(
                "shard is for circuit `{}`, resolver handed `{}`",
                source.name,
                circuit.name()
            )));
        }
        let config = decode_config(&j)?;
        let lo = usize_field(&j, "lo")?;
        let hi = usize_field(&j, "hi")?;
        let total = usize_field(&j, "universe_len")?;
        if lo > hi || hi > total {
            return Err(schema(format!(
                "invalid shard range [{lo}‥{hi}) of {total}"
            )));
        }
        let raw = j
            .get("outcomes")
            .and_then(Json::as_array)
            .ok_or_else(|| schema("missing `outcomes`"))?;
        if raw.len() != hi - lo {
            return Err(schema(format!(
                "shard has {} outcomes for a range of {}",
                raw.len(),
                hi - lo
            )));
        }
        let outcomes = raw
            .iter()
            .map(|o| {
                if o.is_null() {
                    Ok(None)
                } else {
                    decode_outcome(o, circuit).map(Some)
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardArtifact {
            config,
            circuit: source,
            lo,
            hi,
            total,
            outcomes,
        })
    }

    /// Atomically writes the encoded shard to `path`.
    pub fn save(&self, path: impl AsRef<Path>, circuit: &Circuit) -> Result<(), ArtifactError> {
        write_atomic(path.as_ref(), &self.encode(circuit))
    }

    /// Reads and decodes a shard from `path`.
    pub fn load(path: impl AsRef<Path>, circuit: &Circuit) -> Result<Self, ArtifactError> {
        let text = crate::io::read_to_string(path.as_ref())
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::decode(&text, circuit)
    }
}

/// Assembles shards into one speculation table indexed by universe
/// position, validating that every shard was cut from the same
/// enumeration (`config`, circuit name, universe size). Overlapping
/// shards are fine — generation is pure, so duplicates agree; positions
/// no shard covers stay `None` and fall back to local generation in the
/// merge.
pub fn assemble_table(
    circuit: &Circuit,
    config: &RunConfig,
    shards: &[&ShardArtifact],
) -> Result<Vec<Option<FaultOutcome>>, ArtifactError> {
    let total = config
        .model
        .model()
        .enumerate(circuit, &config.universe)
        .len();
    let mut table: Vec<Option<FaultOutcome>> = vec![None; total];
    for shard in shards {
        if shard.config != *config {
            return Err(ArtifactError::Mismatch(
                "shard was generated under a different configuration".into(),
            ));
        }
        if shard.circuit.name != circuit.name() {
            return Err(ArtifactError::Mismatch(format!(
                "shard is for circuit `{}`, merge runs `{}`",
                shard.circuit.name,
                circuit.name()
            )));
        }
        if shard.total != total {
            return Err(ArtifactError::Mismatch(format!(
                "shard was cut from a universe of {} faults, merge enumerates {total}",
                shard.total
            )));
        }
        for (k, outcome) in shard.outcomes.iter().enumerate() {
            if let Some(o) = outcome {
                table[shard.lo + k] = Some(o.clone());
            }
        }
    }
    Ok(table)
}

/// The shard-aware merge: recombines `shards` into a complete
/// [`RunArtifact`] whose canonical encoding is **byte-identical to a
/// single-node run** of the same `config`/seed over `circuit`.
///
/// Record order is restored by universe index (the speculation table is
/// index-aligned with the fault list), and the credit passes + the
/// credit-RNG stream execute here, serially, exactly as an undistributed
/// run executes them. Universe positions no shard covers are generated
/// locally, so a merge over an incomplete shard set is slower, never
/// wrong.
pub fn merge_artifact(
    circuit: &Circuit,
    source: Option<CircuitSource>,
    config: RunConfig,
    shards: &[&ShardArtifact],
) -> Result<RunArtifact, ArtifactError> {
    let table = assemble_table(circuit, &config, shards)?;
    let mut engine = Atpg::builder(circuit)
        .backend(config.backend)
        .model(config.model)
        .sensitization(config.sensitization)
        .universe(config.universe)
        .limits(config.limits)
        .seed(config.seed)
        .speculation(table)
        .try_build()
        .map_err(|e| ArtifactError::Mismatch(e.to_string()))?;
    let run = engine.run();
    Ok(RunArtifact::from_run(circuit, &run, config, source))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Backend;
    use gdf_netlist::suite;

    fn config() -> RunConfig {
        RunConfig::new(Backend::NonScan).with_seed(0x51AD)
    }

    #[test]
    fn sharded_merge_is_byte_identical_to_a_single_node_run() {
        let c = suite::s27();
        let config = config();
        let single = {
            let mut engine = Atpg::builder(&c)
                .backend(config.backend)
                .seed(config.seed)
                .build();
            let run = engine.run();
            RunArtifact::from_run(&c, &run, config, None).canonical_encode()
        };
        for n in [1, 2, 3, 5] {
            let total = config.model.model().enumerate(&c, &config.universe).len();
            let mut shards = Vec::new();
            let chunk = total.div_ceil(n);
            let mut lo = 0;
            while lo < total {
                let hi = (lo + chunk).min(total);
                let mut shard = ShardArtifact::new(&c, None, config, lo, hi).unwrap();
                assert!(shard.run(&c, |_| true).unwrap());
                assert!(shard.is_complete());
                shards.push(shard);
                lo = hi;
            }
            let refs: Vec<&ShardArtifact> = shards.iter().collect();
            let merged = merge_artifact(&c, None, config, &refs).unwrap();
            assert_eq!(
                merged.canonical_encode(),
                single,
                "merge of {n} shards reproduces the single-node bytes"
            );
        }
    }

    #[test]
    fn shard_encoding_round_trips_and_resumes() {
        let c = suite::s27();
        let config = config();
        let mut shard = ShardArtifact::new(&c, None, config, 2, 9).unwrap();
        // Stop after three outcomes: a partial, resumable shard.
        let mut steps = 0;
        let complete = shard
            .run(&c, |_| {
                steps += 1;
                steps < 3
            })
            .unwrap();
        assert!(!complete);
        assert_eq!(shard.decided(), 3);

        let text = shard.encode(&c);
        let mut restored = ShardArtifact::decode(&text, &c).unwrap();
        assert_eq!(restored, shard);

        // Resume from the decoded state; the completed shard equals one
        // computed in a single pass.
        assert!(restored.run(&c, |_| true).unwrap());
        let mut fresh = ShardArtifact::new(&c, None, config, 2, 9).unwrap();
        assert!(fresh.run(&c, |_| true).unwrap());
        assert_eq!(restored.encode(&c), fresh.encode(&c));
    }

    #[test]
    fn merge_fills_missing_ranges_locally() {
        let c = suite::s27();
        let config = config();
        // Only cover the middle third; the merge must still match.
        let total = config.model.model().enumerate(&c, &config.universe).len();
        let (lo, hi) = (total / 3, 2 * total / 3);
        let mut shard = ShardArtifact::new(&c, None, config, lo, hi).unwrap();
        assert!(shard.run(&c, |_| true).unwrap());
        let merged = merge_artifact(&c, None, config, &[&shard]).unwrap();

        let mut engine = Atpg::builder(&c)
            .backend(config.backend)
            .seed(config.seed)
            .build();
        let run = engine.run();
        let single = RunArtifact::from_run(&c, &run, config, None);
        assert_eq!(merged.canonical_encode(), single.canonical_encode());
    }

    #[test]
    fn assemble_rejects_foreign_shards() {
        let c = suite::s27();
        let config = config();
        let shard = ShardArtifact::new(&c, None, config.with_seed(7), 0, 4).unwrap();
        let err = assemble_table(&c, &config, &[&shard]).unwrap_err();
        assert!(matches!(err, ArtifactError::Mismatch(_)));
    }
}
