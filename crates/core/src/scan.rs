//! Enhanced-scan delay ATPG baseline.
//!
//! The historical context of the paper: scan-based delay testing (its
//! refs 10–13) sidesteps the sequential propagation and initialization
//! problems by making every flip-flop controllable and observable. With
//! *enhanced* scan cells, both vectors of the two-pattern test can be
//! loaded independently, so the problem becomes purely combinational.
//!
//! This module realizes that baseline by rewriting the sequential circuit
//! into its *combinational view* — every flip-flop output becomes a
//! primary input, every flip-flop D net a primary output — and running the
//! unmodified TDgen on it. The ablation bench compares fault coverage and
//! runtime against the non-scan flow, reproducing the trade-off that
//! eventually made non-scan delay ATPG obsolete (at the price of scan
//! area, which is exactly what the paper set out to avoid).

use gdf_netlist::{Circuit, CircuitBuilder, DelayFault, FaultSite, GateKind, NodeId};
use gdf_tdgen::{LocalTest, TdGen, TdGenConfig, TdGenOutcome};

/// Result of scan-based generation for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanOutcome {
    /// A two-pattern test over PIs + scanned state (`V1`/`V2` each cover
    /// all PIs followed by all flip-flops).
    Test(LocalTest),
    /// Robustly untestable even with full enhanced scan (combinationally
    /// redundant for the delay fault model).
    Untestable,
    /// Backtrack limit hit.
    Aborted,
}

/// Enhanced-scan delay-fault ATPG over the combinational view.
///
/// # Example
///
/// ```
/// use gdf_core::scan::ScanDelayAtpg;
/// use gdf_netlist::{suite, FaultUniverse};
///
/// let c = suite::s27();
/// let scan = ScanDelayAtpg::new(&c);
/// let faults = FaultUniverse::default().delay_faults(&c);
/// let outcomes: Vec<_> = faults.iter().map(|&f| scan.generate(f)).collect();
/// assert!(outcomes.iter().any(|o| matches!(o, gdf_core::ScanOutcome::Test(_))));
/// ```
#[derive(Debug)]
pub struct ScanDelayAtpg {
    view: Circuit,
    config: TdGenConfig,
    /// Maps node ids of the original circuit to the view (dense).
    node_map: Vec<NodeId>,
    /// Like `node_map`, but flip-flops map to their capture buffers (the
    /// correct identity for branch *sinks*).
    sink_map: Vec<NodeId>,
}

impl ScanDelayAtpg {
    /// Builds the combinational view of `circuit` with default TDgen
    /// limits.
    pub fn new(circuit: &Circuit) -> Self {
        Self::with_config(circuit, TdGenConfig::default())
    }

    /// Builds the combinational view with explicit TDgen limits.
    pub fn with_config(circuit: &Circuit, config: TdGenConfig) -> Self {
        let (view, node_map) = combinational_view(circuit);
        let sink_map = circuit
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| {
                if n.kind() == GateKind::Dff {
                    view.node_by_name(&format!("__scan_{}", n.name()))
                        .expect("capture buffer exists")
                } else {
                    node_map[i]
                }
            })
            .collect();
        ScanDelayAtpg {
            view,
            config,
            node_map,
            sink_map,
        }
    }

    /// The rewritten (scan) circuit: flip-flop outputs are PIs, D nets are
    /// POs.
    pub fn view(&self) -> &Circuit {
        &self.view
    }

    /// Generates an enhanced-scan two-pattern test for a fault expressed
    /// in the *original* circuit's node ids.
    pub fn generate(&self, fault: DelayFault) -> ScanOutcome {
        let site = FaultSite {
            stem: self.node_map[fault.site.stem.index()],
            // A branch into a flip-flop becomes the branch into its scan
            // capture buffer (pin 0 in both worlds).
            branch: fault
                .site
                .branch
                .map(|(sink, pin)| (self.sink_map[sink.index()], pin)),
        };
        let mapped = DelayFault {
            site,
            kind: fault.kind,
        };
        let gen = TdGen::with_config(&self.view, self.config);
        match gen.generate(mapped) {
            TdGenOutcome::Test(t) => ScanOutcome::Test(t),
            TdGenOutcome::Untestable => ScanOutcome::Untestable,
            TdGenOutcome::Aborted => ScanOutcome::Aborted,
        }
    }
}

/// Rewrites a sequential circuit into its combinational view: every
/// flip-flop output becomes an `INPUT` (same name), and its D net feeds a
/// scan *capture buffer* `__scan_<q>` marked `OUTPUT` — so the D edge into
/// the scan cell stays an explicit branch and fanout branch faults map
/// one-to-one. Returns the view plus an old-id → new-id map (flip-flop
/// nodes map to their capture buffers for fault-site purposes... their
/// *output* identity maps to the new input of the same name).
///
/// # Panics
///
/// Panics if the input circuit is malformed (cannot happen for a
/// [`Circuit`] built through the public API).
pub fn combinational_view(circuit: &Circuit) -> (Circuit, Vec<NodeId>) {
    let mut b = CircuitBuilder::new(format!("{}_scan", circuit.name()));
    for &pi in circuit.inputs() {
        b.add_input(circuit.node(pi).name());
    }
    for &ff in circuit.dffs() {
        b.add_input(circuit.node(ff).name());
    }
    for &gate in circuit.topo_order() {
        let node = circuit.node(gate);
        let fanin: Vec<&str> = node
            .fanin()
            .iter()
            .map(|&f| circuit.node(f).name())
            .collect();
        b.add_gate(node.name(), node.kind(), &fanin);
    }
    for &ff in circuit.dffs() {
        let d = circuit.ppo_of_dff(ff);
        let capture = format!("__scan_{}", circuit.node(ff).name());
        b.add_gate(&capture, GateKind::Buf, &[circuit.node(d).name()]);
        b.mark_output(capture);
    }
    for &po in circuit.outputs() {
        b.mark_output(circuit.node(po).name());
    }
    let view = b.build().expect("combinational view is valid");
    let node_map = circuit
        .nodes()
        .iter()
        .map(|n| view.node_by_name(n.name()).expect("name preserved"))
        .collect();
    (view, node_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{suite, DelayFaultKind, FaultUniverse};

    #[test]
    fn view_structure() {
        let c = suite::s27();
        let (view, map) = combinational_view(&c);
        assert_eq!(view.num_inputs(), 4 + 3);
        assert_eq!(view.num_dffs(), 0);
        assert_eq!(view.num_outputs(), 1 + 3);
        assert_eq!(view.num_gates(), c.num_gates() + 3, "capture buffers added");
        assert_eq!(map.len(), c.num_nodes());
        // GateKind of mapped DFFs becomes Input.
        for &ff in c.dffs() {
            assert_eq!(
                view.node(map[ff.index()]).kind(),
                gdf_netlist::GateKind::Input
            );
        }
    }

    #[test]
    fn scan_tests_strictly_dominate_nonscan_local_coverage() {
        // Everything TDgen can test without scan, enhanced scan can too:
        // the scan view only adds controllability and observability.
        let c = suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let scan = ScanDelayAtpg::new(&c);
        let nonscan = TdGen::new(&c);
        for &f in &faults {
            if nonscan.generate(f).test().is_some() {
                assert!(
                    matches!(scan.generate(f), ScanOutcome::Test(_)),
                    "scan lost {}",
                    f.describe(&c)
                );
            }
        }
    }

    #[test]
    fn scan_finds_more_than_nonscan_full_flow() {
        let c = suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let scan = ScanDelayAtpg::new(&c);
        let scan_tested = faults
            .iter()
            .filter(|&&f| matches!(scan.generate(f), ScanOutcome::Test(_)))
            .count();
        assert!(scan_tested > 0);
        // Spot-check a fault: a slow-to-rise on a DFF output line is
        // directly launchable with enhanced scan.
        let g5 = c.node_by_name("G5").unwrap();
        let f = DelayFault {
            site: FaultSite::on_stem(g5),
            kind: DelayFaultKind::SlowToRise,
        };
        assert!(matches!(scan.generate(f), ScanOutcome::Test(_)));
    }
}
