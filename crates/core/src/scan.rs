//! Enhanced-scan delay ATPG baseline.
//!
//! The historical context of the paper: scan-based delay testing (its
//! refs 10–13) sidesteps the sequential propagation and initialization
//! problems by making every flip-flop controllable and observable. With
//! *enhanced* scan cells, both vectors of the two-pattern test can be
//! loaded independently, so the problem becomes purely combinational.
//!
//! This module realizes that baseline by rewriting the sequential circuit
//! into its *combinational view* — every flip-flop output becomes a
//! primary input, every flip-flop D net a primary output — and running the
//! unmodified TDgen on it. The ablation bench compares fault coverage and
//! runtime against the non-scan flow, reproducing the trade-off that
//! eventually made non-scan delay ATPG obsolete (at the price of scan
//! area, which is exactly what the paper set out to avoid).

use crate::engine::{Detection, FaultOutcome};
use crate::pattern::TestSequence;
use gdf_netlist::{Circuit, CircuitBuilder, DelayFault, FaultSite, GateKind, NodeId};
use gdf_tdgen::{LocalObservation, TdGen, TdGenConfig, TdGenOutcome};

/// Enhanced-scan delay-fault ATPG over the combinational view.
///
/// Results come back as the unified [`FaultOutcome`]: a detection's
/// sequence is the bare `V1`/`V2` launch/capture pair whose vectors run
/// over the *scan view's* inputs — all original PIs in order, followed
/// by all flip-flop (scan-cell) values in [`Circuit::dffs`] order, both
/// independently loadable with enhanced scan — and `observed_po` names
/// the observing output in **original-circuit** ids: a real PO maps to
/// itself, a scan capture maps to the PPO (D net) the cell samples.
///
/// # Example
///
/// ```
/// use gdf_core::scan::ScanDelayAtpg;
/// use gdf_netlist::{suite, FaultUniverse};
///
/// let c = suite::s27();
/// let scan = ScanDelayAtpg::new(&c);
/// let faults = FaultUniverse::default().delay_faults(&c);
/// assert!(faults.iter().any(|&f| scan.generate(f).is_detected()));
/// ```
#[derive(Debug)]
pub struct ScanDelayAtpg {
    view: Circuit,
    config: TdGenConfig,
    /// Maps node ids of the original circuit to the view (dense).
    node_map: Vec<NodeId>,
    /// Like `node_map`, but flip-flops map to their capture buffers (the
    /// correct identity for branch *sinks*).
    sink_map: Vec<NodeId>,
    /// Maps view *output* ids back to original-circuit ids: a real PO to
    /// itself, a capture buffer to the PPO (D net) its scan cell samples.
    /// Sparse over view ids; `None` for non-output view nodes.
    po_map: Vec<Option<NodeId>>,
}

impl ScanDelayAtpg {
    /// Builds the combinational view of `circuit` with default TDgen
    /// limits.
    pub fn new(circuit: &Circuit) -> Self {
        Self::with_config(circuit, TdGenConfig::default())
    }

    /// Builds the combinational view with explicit TDgen limits.
    pub fn with_config(circuit: &Circuit, config: TdGenConfig) -> Self {
        let (view, node_map) = combinational_view(circuit);
        let sink_map = circuit
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| {
                if n.kind() == GateKind::Dff {
                    view.node_by_name(&capture_name(n.name()))
                        .expect("capture buffer exists")
                } else {
                    node_map[i]
                }
            })
            .collect();
        let mut po_map = vec![None; view.num_nodes()];
        for &po in circuit.outputs() {
            po_map[node_map[po.index()].index()] = Some(po);
        }
        for &ff in circuit.dffs() {
            let capture = view
                .node_by_name(&capture_name(circuit.node(ff).name()))
                .expect("capture buffer exists");
            po_map[capture.index()] = Some(circuit.ppo_of_dff(ff));
        }
        ScanDelayAtpg {
            view,
            config,
            node_map,
            sink_map,
            po_map,
        }
    }

    /// The rewritten (scan) circuit: flip-flop outputs are PIs, D nets are
    /// POs.
    pub fn view(&self) -> &Circuit {
        &self.view
    }

    /// Generates an enhanced-scan two-pattern test for a fault expressed
    /// in the *original* circuit's node ids.
    pub fn generate(&self, fault: DelayFault) -> FaultOutcome {
        let site = FaultSite {
            stem: self.node_map[fault.site.stem.index()],
            // A branch into a flip-flop becomes the branch into its scan
            // capture buffer (pin 0 in both worlds).
            branch: fault
                .site
                .branch
                .map(|(sink, pin)| (self.sink_map[sink.index()], pin)),
        };
        let mapped = DelayFault {
            site,
            kind: fault.kind,
        };
        let gen = TdGen::with_config(&self.view, self.config);
        match gen.generate(mapped) {
            TdGenOutcome::Test(t) => FaultOutcome::Detected(Box::new(Detection {
                sequence: TestSequence::new(Vec::new(), t.v1.clone(), t.v2.clone(), Vec::new()),
                observed_po: match t.observation {
                    // Translate back to original-circuit ids: a real PO
                    // maps to itself, a capture buffer to the PPO (D net)
                    // its scan cell samples — so the id resolves against
                    // `AtpgEngine::circuit()`, which is the original
                    // netlist, never the view.
                    LocalObservation::AtPo(po) => self.po_map[po.index()],
                    // The scan view is combinational, so observation is
                    // always at a view output.
                    LocalObservation::AtPpo { .. } => None,
                },
                relied_ppos: Vec::new(),
            })),
            TdGenOutcome::Untestable => FaultOutcome::Untestable,
            TdGenOutcome::Aborted => FaultOutcome::Aborted,
        }
    }
}

/// The view name of the scan capture buffer for flip-flop `q` — the one
/// definition tying the view builder and the id-map lookups together.
fn capture_name(ff_name: &str) -> String {
    format!("__scan_{ff_name}")
}

/// Rewrites a sequential circuit into its combinational view: every
/// flip-flop output becomes an `INPUT` (same name), and its D net feeds a
/// scan *capture buffer* `__scan_<q>` marked `OUTPUT` — so the D edge into
/// the scan cell stays an explicit branch and fanout branch faults map
/// one-to-one. Returns the view plus an old-id → new-id map (flip-flop
/// nodes map to their capture buffers for fault-site purposes... their
/// *output* identity maps to the new input of the same name).
///
/// # Panics
///
/// Panics if the input circuit is malformed (cannot happen for a
/// [`Circuit`] built through the public API).
pub fn combinational_view(circuit: &Circuit) -> (Circuit, Vec<NodeId>) {
    let mut b = CircuitBuilder::new(format!("{}_scan", circuit.name()));
    for &pi in circuit.inputs() {
        b.add_input(circuit.node(pi).name());
    }
    for &ff in circuit.dffs() {
        b.add_input(circuit.node(ff).name());
    }
    for &gate in circuit.topo_order() {
        let node = circuit.node(gate);
        let fanin: Vec<&str> = node
            .fanin()
            .iter()
            .map(|&f| circuit.node(f).name())
            .collect();
        b.add_gate(node.name(), node.kind(), &fanin);
    }
    for &ff in circuit.dffs() {
        let d = circuit.ppo_of_dff(ff);
        let capture = capture_name(circuit.node(ff).name());
        b.add_gate(&capture, GateKind::Buf, &[circuit.node(d).name()]);
        b.mark_output(capture);
    }
    for &po in circuit.outputs() {
        b.mark_output(circuit.node(po).name());
    }
    let view = b.build().expect("combinational view is valid");
    let node_map = circuit
        .nodes()
        .iter()
        .map(|n| view.node_by_name(n.name()).expect("name preserved"))
        .collect();
    (view, node_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{suite, DelayFaultKind, FaultUniverse};

    #[test]
    fn view_structure() {
        let c = suite::s27();
        let (view, map) = combinational_view(&c);
        assert_eq!(view.num_inputs(), 4 + 3);
        assert_eq!(view.num_dffs(), 0);
        assert_eq!(view.num_outputs(), 1 + 3);
        assert_eq!(view.num_gates(), c.num_gates() + 3, "capture buffers added");
        assert_eq!(map.len(), c.num_nodes());
        // GateKind of mapped DFFs becomes Input.
        for &ff in c.dffs() {
            assert_eq!(
                view.node(map[ff.index()]).kind(),
                gdf_netlist::GateKind::Input
            );
        }
    }

    #[test]
    fn scan_tests_strictly_dominate_nonscan_local_coverage() {
        // Everything TDgen can test without scan, enhanced scan can too:
        // the scan view only adds controllability and observability.
        let c = suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let scan = ScanDelayAtpg::new(&c);
        let nonscan = TdGen::new(&c);
        for &f in &faults {
            if nonscan.generate(f).test().is_some() {
                assert!(
                    scan.generate(f).is_detected(),
                    "scan lost {}",
                    f.describe(&c)
                );
            }
        }
    }

    #[test]
    fn scan_finds_more_than_nonscan_full_flow() {
        let c = suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let scan = ScanDelayAtpg::new(&c);
        let scan_tested = faults
            .iter()
            .filter(|&&f| scan.generate(f).is_detected())
            .count();
        assert!(scan_tested > 0);
        // Spot-check a fault: a slow-to-rise on a DFF output line is
        // directly launchable with enhanced scan.
        let g5 = c.node_by_name("G5").unwrap();
        let f = DelayFault {
            site: FaultSite::on_stem(g5),
            kind: DelayFaultKind::SlowToRise,
        };
        match scan.generate(f) {
            FaultOutcome::Detected(d) => {
                assert_eq!(d.sequence.len(), 2, "bare launch/capture pair");
                // The observing output resolves in the ORIGINAL circuit:
                // either a real PO or a PPO (flip-flop D net).
                let po = d.observed_po.expect("combinational observation");
                assert!(po.index() < c.num_nodes(), "id is in original space");
                let is_po = c.outputs().contains(&po);
                let is_ppo = c.ppos().contains(&po);
                assert!(
                    is_po || is_ppo,
                    "{} is neither PO nor PPO",
                    c.node(po).name()
                );
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn observed_po_ids_resolve_in_original_circuit() {
        let c = suite::s27();
        let scan = ScanDelayAtpg::new(&c);
        for f in FaultUniverse::default().delay_faults(&c) {
            if let FaultOutcome::Detected(d) = scan.generate(f) {
                let po = d.observed_po.expect("scan observation is combinational");
                assert!(po.index() < c.num_nodes());
                assert!(
                    c.outputs().contains(&po) || c.ppos().contains(&po),
                    "{}: observed at {} which is neither PO nor PPO",
                    f.describe(&c),
                    c.node(po).name()
                );
            }
        }
    }
}
