//! The combined gate-delay-fault ATPG system for non-scan sequential
//! circuits — the paper's headline contribution (Figure 4, "the extended
//! FOGBUSTER algorithm").
//!
//! [`driver::DelayAtpg`] couples the TDgen local two-pattern generator with
//! SEMILET's sequential propagation and initialization around the flow of
//! Figure 4:
//!
//! 1. **Local test generation** (TDgen) — provoke the fault and drive the
//!    effect to a PO or PPO over the two coupled time frames.
//! 2. **Propagation** (SEMILET, forward time processing) — if the effect
//!    was latched, drive the state difference to a PO under slow clocking.
//! 3. **Propagation justification** — re-enter TDgen with additional
//!    steady-PPO constraints when the propagation needs state bits the
//!    local test left unjustifiable.
//! 4. **Justification of the test frames** — implicit in TDgen's forward
//!    functional semantics (every emitted vector pair is justified by
//!    construction).
//! 5. **Initialization** (SEMILET, reverse time processing) — compute a
//!    synchronizing sequence to the required state.
//!
//! Backtracking between the phases is realized by banning failed
//! observation targets and re-entering the local generator. After every
//! successful test, the three-phase fault simulation of §5 (FAUSIM good
//! machine + state-difference propagation, TDsim critical path tracing
//! with invalidation) drops additionally-detected faults.
//!
//! [`pattern`] assembles the emitted vectors with their clock schedule
//! (Figure 2: slow … slow, **fast**, slow … slow); [`report`] accumulates
//! the Table 3 statistics; [`scan`] provides the enhanced-scan baseline
//! used by the ablation benches.

pub mod artifact;
pub mod compact;
pub mod digest;
pub mod driver;
pub mod engine;
pub mod io;
pub mod json;
pub mod pattern;
pub mod phase;
pub mod report;
pub mod scan;
pub mod session;
pub mod shard;

pub use artifact::{ArtifactError, CircuitSource, PatternEntry, PatternSet, RunArtifact};
pub use compact::{compact_sequences, CompactionResult};
pub use digest::{config_digest, Digest};
pub use driver::{
    AtpgRun, DelayAtpg, DelayAtpgConfig, FaultClassification, FaultRecord, FsimScratch,
};
pub use engine::{
    Atpg, AtpgBuilder, AtpgEngine, AtpgError, Backend, Detection, EnhancedScanEngine, FaultOutcome,
    Limits, NonScanEngine, Observer, RunConfig, RunSnapshot, StuckAtEngine,
};
pub use gdf_netlist::{Fault, FaultModel, FaultSet, ModelKind};
pub use gdf_tdgen::Sensitization;
pub use io::{ArtifactIo, ProductionIo};
pub use pattern::{ClockSpeed, TestSequence, TimedVector};
pub use phase::{PhaseSink, PhaseSpan};
pub use report::{CircuitReport, ClassCounts, Coverage, Table3Row};
pub use scan::ScanDelayAtpg;
pub use session::{
    grade_patterns, Campaign, CampaignBuilder, CampaignReport, Checkpointer, EventObserver,
    GradeReport, ProgressEvent,
};
pub use shard::ShardArtifact;
