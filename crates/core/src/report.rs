//! Statistics accumulation and Table 3 rendering.

use std::fmt;
use std::time::Duration;

/// One row of the paper's Table 3: per-circuit fault accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Row {
    /// Circuit name (synthetic stand-ins carry a `_syn` suffix).
    pub circuit: String,
    /// Faults for which a complete test was emitted (including faults
    /// dropped by fault simulation).
    pub tested: u32,
    /// Faults proven untestable (within the documented search bounds).
    pub untestable: u32,
    /// Faults abandoned at a backtrack limit.
    pub aborted: u32,
    /// Total applied vectors over all emitted sequences — the paper's
    /// `#pat` column "includes the patterns needed for initialization and
    /// propagation".
    pub patterns: u32,
    /// Wall-clock generation time.
    pub elapsed: Duration,
}

impl Table3Row {
    /// Total number of faults accounted for.
    pub fn total_faults(&self) -> u32 {
        self.tested + self.untestable + self.aborted
    }

    /// The row with the wall-clock column zeroed — the comparable part.
    ///
    /// Two runs of the same deterministic configuration produce equal
    /// `normalized()` rows even though their `elapsed` times differ; the
    /// serial-vs-parallel conformance tests compare through this.
    pub fn normalized(&self) -> Table3Row {
        Table3Row {
            elapsed: Duration::ZERO,
            ..self.clone()
        }
    }

    /// Fraction of decided (non-aborted) faults that are tested.
    pub fn test_efficiency(&self) -> f64 {
        let decided = (self.tested + self.untestable) as f64;
        if decided == 0.0 {
            0.0
        } else {
            self.tested as f64 / decided
        }
    }
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>7} {:>8} {:>8} {:>7} {:>9.1}",
            self.circuit,
            self.tested,
            self.untestable,
            self.aborted,
            self.patterns,
            self.elapsed.as_secs_f64()
        )
    }
}

/// Full report for one circuit, with the per-fault detail retained.
#[derive(Debug, Clone)]
pub struct CircuitReport {
    /// The aggregate row.
    pub row: Table3Row,
    /// How many of the tested faults were credited by fault simulation
    /// (never explicitly targeted) rather than by explicit generation —
    /// the paper notes these are "not explicitly targeted by the test
    /// pattern generator".
    pub dropped_by_simulation: u32,
    /// Number of emitted test sequences.
    pub sequences: u32,
}

impl CircuitReport {
    /// Header matching [`Table3Row`]'s `Display` alignment.
    pub fn header() -> &'static str {
        "circuit       tested untstbl  aborted    #pat   time[s]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accounting() {
        let row = Table3Row {
            circuit: "s27".into(),
            tested: 39,
            untestable: 11,
            aborted: 13,
            patterns: 40,
            elapsed: Duration::from_millis(250),
        };
        assert_eq!(row.total_faults(), 63);
        assert!((row.test_efficiency() - 39.0 / 50.0).abs() < 1e-9);
        let line = row.to_string();
        assert!(line.contains("s27"));
        assert!(line.contains("39"));
    }

    #[test]
    fn efficiency_handles_zero() {
        let row = Table3Row {
            circuit: "empty".into(),
            tested: 0,
            untestable: 0,
            aborted: 5,
            patterns: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(row.test_efficiency(), 0.0);
    }
}
