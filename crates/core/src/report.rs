//! Statistics accumulation, first-class coverage, and Table 3 rendering.

use crate::driver::{FaultClassification, FaultRecord};
use std::fmt;
use std::time::Duration;

/// One row of the paper's Table 3: per-circuit fault accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Row {
    /// Circuit name (synthetic stand-ins carry a `_syn` suffix).
    pub circuit: String,
    /// Faults for which a complete test was emitted (including faults
    /// dropped by fault simulation).
    pub tested: u32,
    /// Faults proven untestable (within the documented search bounds).
    pub untestable: u32,
    /// Faults abandoned at a backtrack limit.
    pub aborted: u32,
    /// Total applied vectors over all emitted sequences — the paper's
    /// `#pat` column "includes the patterns needed for initialization and
    /// propagation".
    pub patterns: u32,
    /// Wall-clock generation time.
    pub elapsed: Duration,
}

impl Table3Row {
    /// Total number of faults accounted for.
    pub fn total_faults(&self) -> u32 {
        self.tested + self.untestable + self.aborted
    }

    /// The row with the wall-clock column zeroed — the comparable part.
    ///
    /// Two runs of the same deterministic configuration produce equal
    /// `normalized()` rows even though their `elapsed` times differ; the
    /// serial-vs-parallel conformance tests compare through this.
    pub fn normalized(&self) -> Table3Row {
        Table3Row {
            elapsed: Duration::ZERO,
            ..self.clone()
        }
    }

    /// Fraction of decided (non-aborted) faults that are tested.
    pub fn test_efficiency(&self) -> f64 {
        let decided = (self.tested + self.untestable) as f64;
        if decided == 0.0 {
            0.0
        } else {
            self.tested as f64 / decided
        }
    }
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>7} {:>8} {:>8} {:>7} {:>9.1}",
            self.circuit,
            self.tested,
            self.untestable,
            self.aborted,
            self.patterns,
            self.elapsed.as_secs_f64()
        )
    }
}

/// Collapsed-universe accounting: how many equivalence classes the
/// fault list collapses into, and how many of them are detected (a class
/// counts as detected when *any* member is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassCounts {
    /// Number of equivalence classes (the collapsed denominator).
    pub classes: u32,
    /// Classes with at least one detected member.
    pub detected: u32,
}

/// Standard ATPG coverage accounting, computed uniformly from the
/// per-fault outcome stream of any backend and any fault model.
///
/// Two denominators are carried: the **uncollapsed** universe
/// ([`Coverage::total`], every enumerated fault) and, when the producer
/// had collapse information, the **collapsed** one
/// ([`Coverage::collapsed`], one count per structural equivalence
/// class). Detections split into *hard* detections (explicitly
/// generated tests, [`Coverage::detected`]) and *possible* detections
/// ([`Coverage::possibly_detected`]: faults credited by the
/// random-X-fill fault-simulation pass, whose detection depends on the
/// recorded fill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Faults with an explicitly generated test.
    pub detected: u32,
    /// Faults credited by the (random-fill) fault-simulation pass.
    pub possibly_detected: u32,
    /// Faults proven untestable within the search bounds.
    pub untestable: u32,
    /// Faults abandoned at a limit.
    pub aborted: u32,
    /// Uncollapsed universe size.
    pub total: u32,
    /// Collapsed accounting; `None` when the producer had no collapse
    /// information (e.g. a version-1 artifact).
    pub collapsed: Option<ClassCounts>,
}

impl Coverage {
    /// An empty tally over a known universe size.
    pub fn zero(total: u32) -> Self {
        Coverage {
            detected: 0,
            possibly_detected: 0,
            untestable: 0,
            aborted: 0,
            total,
            collapsed: None,
        }
    }

    /// Tallies a decided record stream. `class_of` (index-aligned with
    /// `records`, values as produced by
    /// [`gdf_netlist::model::FaultModel::collapse`]) enables the
    /// collapsed denominators.
    pub fn from_records(records: &[FaultRecord], class_of: Option<&[usize]>) -> Self {
        let mut coverage = Coverage::zero(records.len() as u32);
        for r in records {
            coverage.count(r.classification, r.by_simulation);
        }
        if let Some(class_of) = class_of {
            let classes = class_of.iter().copied().max().map_or(0, |m| m + 1);
            let mut class_detected = vec![false; classes];
            for (r, &class) in records.iter().zip(class_of) {
                if r.classification == FaultClassification::Tested {
                    class_detected[class] = true;
                }
            }
            coverage.collapsed = Some(ClassCounts {
                classes: classes as u32,
                detected: class_detected.iter().filter(|&&d| d).count() as u32,
            });
        }
        coverage
    }

    /// Adds one classified fault to the (uncollapsed) tally — the
    /// streaming entry point for [`crate::engine::FaultOutcome`]
    /// consumers that never hold the whole record list.
    pub fn count(&mut self, classification: FaultClassification, by_simulation: bool) {
        match classification {
            FaultClassification::Tested if by_simulation => self.possibly_detected += 1,
            FaultClassification::Tested => self.detected += 1,
            FaultClassification::Untestable => self.untestable += 1,
            FaultClassification::Aborted => self.aborted += 1,
        }
    }

    /// All detections, hard and possible.
    pub fn detected_total(&self) -> u32 {
        self.detected + self.possibly_detected
    }

    /// Fault coverage: detections over the uncollapsed universe.
    pub fn fault_coverage(&self) -> f64 {
        ratio(self.detected_total(), self.total)
    }

    /// Test coverage: detections over the testable universe
    /// (total − untestable) — the number a tester cares about.
    pub fn test_coverage(&self) -> f64 {
        ratio(
            self.detected_total(),
            self.total - self.untestable.min(self.total),
        )
    }

    /// Fault efficiency: decided-with-certainty faults (detections plus
    /// proven untestables) over the universe.
    pub fn fault_efficiency(&self) -> f64 {
        ratio(self.detected_total() + self.untestable, self.total)
    }

    /// Collapsed fault coverage (detected classes / classes), when
    /// collapse information exists.
    pub fn collapsed_coverage(&self) -> Option<f64> {
        self.collapsed.map(|c| ratio(c.detected, c.classes))
    }

    /// Merges another tally into this one (campaign aggregation). The
    /// collapsed counts survive only when both sides carry them.
    pub fn merge(&mut self, other: &Coverage) {
        self.detected += other.detected;
        self.possibly_detected += other.possibly_detected;
        self.untestable += other.untestable;
        self.aborted += other.aborted;
        self.total += other.total;
        self.collapsed = match (self.collapsed, other.collapsed) {
            (Some(a), Some(b)) => Some(ClassCounts {
                classes: a.classes + b.classes,
                detected: a.detected + b.detected,
            }),
            _ => None,
        };
    }
}

fn ratio(num: u32, den: u32) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for Coverage {
    /// E.g. `"cov 84.4% eff 96.9% (49+5/64, 8 untestable, 2 aborted)"`,
    /// with a `collapsed 86.2%` suffix when class counts exist.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cov {:.1}% eff {:.1}% ({}+{}/{}, {} untestable, {} aborted",
            100.0 * self.fault_coverage(),
            100.0 * self.fault_efficiency(),
            self.detected,
            self.possibly_detected,
            self.total,
            self.untestable,
            self.aborted,
        )?;
        if let Some(c) = self.collapsed_coverage() {
            write!(f, ", collapsed {:.1}%", 100.0 * c)?;
        }
        f.write_str(")")
    }
}

/// Full report for one circuit, with the per-fault detail retained.
#[derive(Debug, Clone)]
pub struct CircuitReport {
    /// The aggregate row.
    pub row: Table3Row,
    /// How many of the tested faults were credited by fault simulation
    /// (never explicitly targeted) rather than by explicit generation —
    /// the paper notes these are "not explicitly targeted by the test
    /// pattern generator".
    pub dropped_by_simulation: u32,
    /// Number of emitted test sequences.
    pub sequences: u32,
    /// First-class coverage accounting over the run's fault universe.
    pub coverage: Coverage,
}

impl CircuitReport {
    /// Header matching [`CircuitReport::line`]'s alignment.
    pub fn header() -> &'static str {
        "circuit       tested untstbl  aborted    #pat   time[s]   cov%   eff%"
    }

    /// The [`Table3Row`] columns plus the coverage columns — what
    /// `gdf report` and `gdf campaign` print per circuit.
    pub fn line(&self) -> String {
        format!(
            "{} {:>6.1} {:>6.1}",
            self.row,
            100.0 * self.coverage.fault_coverage(),
            100.0 * self.coverage.fault_efficiency()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accounting() {
        let row = Table3Row {
            circuit: "s27".into(),
            tested: 39,
            untestable: 11,
            aborted: 13,
            patterns: 40,
            elapsed: Duration::from_millis(250),
        };
        assert_eq!(row.total_faults(), 63);
        assert!((row.test_efficiency() - 39.0 / 50.0).abs() < 1e-9);
        let line = row.to_string();
        assert!(line.contains("s27"));
        assert!(line.contains("39"));
    }

    #[test]
    fn efficiency_handles_zero() {
        let row = Table3Row {
            circuit: "empty".into(),
            tested: 0,
            untestable: 0,
            aborted: 5,
            patterns: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(row.test_efficiency(), 0.0);
    }
}
