//! The artifact I/O facade — the one narrow seam every persistent byte
//! of the workspace passes through.
//!
//! Everything durable in this system is a small text document written
//! atomically (write a temp file, rename over the destination) and read
//! back whole: run artifacts and pattern sets (`artifact.rs`), shard
//! documents (`shard.rs`), checkpoints (`session::Checkpointer`), job
//! records and the id watermark (`gdf-serve`), and the fleet plan
//! (`gdf-fleet`). [`ArtifactIo`] abstracts exactly those two
//! operations, nothing more; [`ProductionIo`] is the passthrough the
//! process uses unless told otherwise.
//!
//! The point of the seam is *fault injection*: `gdf-chaos` installs an
//! implementation that tears writes, truncates reads, and fakes
//! `ENOSPC` from a deterministic seeded schedule, so the recovery
//! guarantees ("kill -9 anything, resume to identical bytes") can be
//! exercised over the whole failure space instead of the handful of
//! crashes a test author thinks to script. Production code never
//! branches on which implementation is installed — it sees ordinary
//! `std::io` errors or (for torn writes) corrupt bytes its decoders
//! must reject.
//!
//! The installed implementation is process-global ([`set_artifact_io`] /
//! [`reset_artifact_io`]); tests that install one must serialize on
//! their own lock and filter by path so concurrent tests in the same
//! binary are unaffected.

use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// The two primitives of artifact persistence. Implementations must be
/// shareable across the server's worker threads.
pub trait ArtifactIo: Send + Sync {
    /// Writes `text` to `path` atomically: parent directories are
    /// created, the content lands in a temp file first, and a rename
    /// publishes it — readers see the old document or the new one,
    /// never a half-written mix. (A chaos implementation may break
    /// exactly that promise on purpose.)
    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()>;

    /// Reads the whole document at `path`.
    fn read_to_string(&self, path: &Path) -> std::io::Result<String>;
}

/// Where [`ProductionIo`] stages the temp file: the destination's file
/// name with `.tmp` appended (`job.json` → `job.json.tmp`), in the same
/// directory so the rename never crosses a filesystem.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The passthrough implementation: real `std::fs`, real atomicity.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProductionIo;

impl ArtifactIo for ProductionIo {
    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = tmp_path(path);
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }

    fn read_to_string(&self, path: &Path) -> std::io::Result<String> {
        std::fs::read_to_string(path)
    }
}

static ARTIFACT_IO: RwLock<Option<Arc<dyn ArtifactIo>>> = RwLock::new(None);

/// Installs a process-global [`ArtifactIo`] implementation. Intended
/// for fault-injection harnesses; production never calls this.
pub fn set_artifact_io(io: Arc<dyn ArtifactIo>) {
    *ARTIFACT_IO.write().expect("artifact io lock poisoned") = Some(io);
}

/// Restores the default [`ProductionIo`] passthrough.
pub fn reset_artifact_io() {
    *ARTIFACT_IO.write().expect("artifact io lock poisoned") = None;
}

fn current() -> Option<Arc<dyn ArtifactIo>> {
    ARTIFACT_IO
        .read()
        .expect("artifact io lock poisoned")
        .clone()
}

/// Atomic write through the installed implementation (the production
/// passthrough unless a harness swapped one in).
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    match current() {
        Some(io) => io.write_atomic(path, text),
        None => ProductionIo.write_atomic(path, text),
    }
}

/// Whole-document read through the installed implementation.
pub fn read_to_string(path: &Path) -> std::io::Result<String> {
    match current() {
        Some(io) => io.read_to_string(path),
        None => ProductionIo.read_to_string(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_io_round_trips_and_creates_parents() {
        let dir = std::env::temp_dir().join(format!("gdf-io-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep").join("doc.json");
        write_atomic(&path, "{\"a\":1}\n").unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "{\"a\":1}\n");
        // The temp file does not linger after a successful publish.
        assert!(!tmp_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_path_appends_to_the_full_file_name() {
        assert_eq!(
            tmp_path(Path::new("/x/job.json")),
            PathBuf::from("/x/job.json.tmp")
        );
        assert_eq!(
            tmp_path(Path::new("/x/s27.run.json")),
            PathBuf::from("/x/s27.run.json.tmp")
        );
    }
}
