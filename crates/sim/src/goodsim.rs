//! Good-machine logic simulation.
//!
//! [`GoodSimulator`] is the 3-valued sequential simulator behind FAUSIM
//! phase 1: it evaluates the combinational block in topological order and
//! steps the state registers, starting (by default) from the all-`X`
//! power-up state.
//!
//! [`ParallelSimulator`] packs 64 two-valued patterns per machine word and
//! is used for random-pattern fault grading and the Criterion benches.

use gdf_algebra::logic3::Logic3;
use gdf_netlist::{Circuit, GateKind, NodeId};

/// Evaluates one gate over node values addressed through its fanin list —
/// the fold-direct twin of [`gdf_algebra::logic3::eval_gate3`] (same fold
/// order, so identical results), without gathering an input `Vec`.
pub(crate) fn eval3_indexed(kind: GateKind, fanins: &[NodeId], values: &[Logic3]) -> Logic3 {
    let v = |f: &NodeId| values[f.index()];
    match kind {
        GateKind::Buf => v(&fanins[0]),
        GateKind::Not => v(&fanins[0]).not(),
        GateKind::And => fanins.iter().fold(Logic3::One, |a, f| a.and(v(f))),
        GateKind::Nand => fanins.iter().fold(Logic3::One, |a, f| a.and(v(f))).not(),
        GateKind::Or => fanins.iter().fold(Logic3::Zero, |a, f| a.or(v(f))),
        GateKind::Nor => fanins.iter().fold(Logic3::Zero, |a, f| a.or(v(f))).not(),
        GateKind::Xor => fanins.iter().fold(Logic3::Zero, |a, f| a.xor(v(f))),
        GateKind::Xnor => fanins.iter().fold(Logic3::Zero, |a, f| a.xor(v(f))).not(),
        GateKind::Input | GateKind::Dff => {
            panic!("eval3_indexed called on non-combinational kind {kind:?}")
        }
    }
}

/// Three-valued sequential simulator for a [`Circuit`].
///
/// # Example
///
/// ```
/// use gdf_algebra::Logic3;
/// use gdf_netlist::suite;
/// use gdf_sim::GoodSimulator;
///
/// let c = suite::s27();
/// let sim = GoodSimulator::new(&c);
/// let state = sim.initial_state(); // all X (unknown power-up)
/// let vals = sim.eval_comb(&[Logic3::Zero; 4], &state);
/// assert_eq!(vals.len(), c.num_nodes());
/// ```
#[derive(Debug, Clone)]
pub struct GoodSimulator<'c> {
    circuit: &'c Circuit,
}

impl<'c> GoodSimulator<'c> {
    /// Creates a simulator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        GoodSimulator { circuit }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The unknown power-up state: one `X` per flip-flop.
    pub fn initial_state(&self) -> Vec<Logic3> {
        vec![Logic3::X; self.circuit.num_dffs()]
    }

    /// Evaluates the combinational block for one time frame.
    ///
    /// `pi` holds one value per primary input (in [`Circuit::inputs`]
    /// order), `state` one value per flip-flop. Returns one value per node.
    ///
    /// # Panics
    ///
    /// Panics if `pi` or `state` have the wrong length.
    pub fn eval_comb(&self, pi: &[Logic3], state: &[Logic3]) -> Vec<Logic3> {
        let mut values = Vec::new();
        self.eval_comb_into(pi, state, &mut values);
        values
    }

    /// Allocation-free variant of [`GoodSimulator::eval_comb`]: writes the
    /// node values into `values`, reusing its capacity.
    ///
    /// # Panics
    ///
    /// Panics if `pi` or `state` have the wrong length.
    pub fn eval_comb_into(&self, pi: &[Logic3], state: &[Logic3], values: &mut Vec<Logic3>) {
        assert_eq!(pi.len(), self.circuit.num_inputs(), "PI vector length");
        assert_eq!(state.len(), self.circuit.num_dffs(), "state vector length");
        values.clear();
        values.resize(self.circuit.num_nodes(), Logic3::X);
        for (i, &id) in self.circuit.inputs().iter().enumerate() {
            values[id.index()] = pi[i];
        }
        for (i, &ff) in self.circuit.dffs().iter().enumerate() {
            values[ff.index()] = state[i];
        }
        for (gate, kind, fanins) in self.circuit.gates_levelized() {
            values[gate.index()] = eval3_indexed(kind, fanins, values);
        }
    }

    /// Extracts the next state (latched PPO values) from a node-value map.
    pub fn next_state(&self, values: &[Logic3]) -> Vec<Logic3> {
        self.circuit
            .ppos()
            .iter()
            .map(|&ppo| values[ppo.index()])
            .collect()
    }

    /// Allocation-free variant of [`GoodSimulator::next_state`].
    pub fn next_state_into(&self, values: &[Logic3], next: &mut Vec<Logic3>) {
        next.clear();
        next.extend(self.circuit.ppos().iter().map(|&ppo| values[ppo.index()]));
    }

    /// Extracts the PO values from a node-value map.
    pub fn outputs(&self, values: &[Logic3]) -> Vec<Logic3> {
        self.circuit
            .outputs()
            .iter()
            .map(|&po| values[po.index()])
            .collect()
    }

    /// Runs a vector sequence from `state`, returning the per-frame node
    /// values and the final state.
    ///
    /// # Panics
    ///
    /// Panics if any vector has the wrong length.
    pub fn run(
        &self,
        state: &[Logic3],
        vectors: &[Vec<Logic3>],
    ) -> (Vec<Vec<Logic3>>, Vec<Logic3>) {
        let mut st = state.to_vec();
        let mut frames = Vec::with_capacity(vectors.len());
        for v in vectors {
            let values = self.eval_comb(v, &st);
            st = self.next_state(&values);
            frames.push(values);
        }
        (frames, st)
    }

    /// Value of one node in a node-value map.
    pub fn value(&self, values: &[Logic3], id: NodeId) -> Logic3 {
        values[id.index()]
    }
}

/// 64-way parallel two-valued simulator (one pattern per bit).
///
/// # Example
///
/// ```
/// use gdf_netlist::suite;
/// use gdf_sim::ParallelSimulator;
///
/// let c = suite::s27();
/// let sim = ParallelSimulator::new(&c);
/// // 64 random-ish PI patterns, all-zero state.
/// let pi = vec![0xDEAD_BEEF_0BAD_F00Du64; 4];
/// let state = vec![0u64; 3];
/// let vals = sim.eval_comb(&pi, &state);
/// assert_eq!(vals.len(), c.num_nodes());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelSimulator<'c> {
    circuit: &'c Circuit,
}

impl<'c> ParallelSimulator<'c> {
    /// Creates a parallel simulator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        ParallelSimulator { circuit }
    }

    /// Evaluates one time frame for 64 packed patterns.
    ///
    /// # Panics
    ///
    /// Panics if `pi` or `state` have the wrong length.
    pub fn eval_comb(&self, pi: &[u64], state: &[u64]) -> Vec<u64> {
        assert_eq!(pi.len(), self.circuit.num_inputs());
        assert_eq!(state.len(), self.circuit.num_dffs());
        let mut values = vec![0u64; self.circuit.num_nodes()];
        for (i, &id) in self.circuit.inputs().iter().enumerate() {
            values[id.index()] = pi[i];
        }
        for (i, &ff) in self.circuit.dffs().iter().enumerate() {
            values[ff.index()] = state[i];
        }
        let mut ins: Vec<u64> = Vec::with_capacity(8);
        for (gate, kind, fanins) in self.circuit.gates_levelized() {
            ins.clear();
            ins.extend(fanins.iter().map(|f| values[f.index()]));
            values[gate.index()] = kind.eval_word(&ins);
        }
        values
    }

    /// Latches the next state from a node-value map.
    pub fn next_state(&self, values: &[u64]) -> Vec<u64> {
        self.circuit
            .ppos()
            .iter()
            .map(|&ppo| values[ppo.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{suite, CircuitBuilder, GateKind};
    use Logic3::{One, Zero, X};

    #[test]
    fn s27_known_response() {
        let c = suite::s27();
        let sim = GoodSimulator::new(&c);
        // With all inputs 0 and all state bits 0:
        // G14=NOT(G0)=1, G12=NOR(G1,G7)=1, G8=AND(G14,G6)=0,
        // G15=OR(G12,G8)=1, G16=OR(G3,G8)=0, G9=NAND(G16,G15)=1,
        // G10=NOR(G14,G11), G11=NOR(G5,G9)=NOR(0,1)=0, G13=NOR(G2,G12)=0,
        // G17=NOT(G11)=1.
        let vals = sim.eval_comb(&[Zero; 4], &[Zero, Zero, Zero]);
        let get = |n: &str| sim.value(&vals, c.node_by_name(n).unwrap());
        assert_eq!(get("G14"), One);
        assert_eq!(get("G11"), Zero);
        assert_eq!(get("G17"), One);
        assert_eq!(get("G10"), Zero); // NOR(1, 0) = 0
        let next = sim.next_state(&vals);
        assert_eq!(next, vec![Zero, Zero, Zero]);
    }

    #[test]
    fn x_propagates_from_unknown_state() {
        let c = suite::s27();
        let sim = GoodSimulator::new(&c);
        let vals = sim.eval_comb(&[Zero; 4], &sim.initial_state());
        // G11 = NOR(G5, G9): G5 is X, G9 = NAND(G16, G15) where G8 = AND(1, X) = X.
        let g11 = sim.value(&vals, c.node_by_name("G11").unwrap());
        assert_eq!(g11, X);
    }

    #[test]
    fn run_sequence_converges_s27() {
        // Driving s27 with a fixed input for a few cycles synchronizes some
        // state bits even from all-X.
        let c = suite::s27();
        let sim = GoodSimulator::new(&c);
        let vecs = vec![vec![One, One, One, One]; 4];
        let (_frames, final_state) = sim.run(&sim.initial_state(), &vecs);
        // G14 = NOT(1) = 0, so G10 = NOR(0, G11); G12 = NOR(1, X) = 0;
        // G13 = NOR(1, 0) = 0 -> G7 becomes 0 after one frame.
        assert_eq!(final_state[2], Zero);
    }

    #[test]
    fn parallel_agrees_with_scalar() {
        let c = suite::s27();
        let scalar = GoodSimulator::new(&c);
        let packed = ParallelSimulator::new(&c);
        // 16 exhaustive PI patterns with zero state, packed into bits 0..16.
        let mut pi_words = vec![0u64; 4];
        for pat in 0..16u32 {
            for (bit, word) in pi_words.iter_mut().enumerate() {
                if pat & (1 << bit) != 0 {
                    *word |= 1 << pat;
                }
            }
        }
        let state_words = vec![0u64; 3];
        let packed_vals = packed.eval_comb(&pi_words, &state_words);
        for pat in 0..16u32 {
            let pi: Vec<Logic3> = (0..4)
                .map(|b| Logic3::from_bool(pat & (1 << b) != 0))
                .collect();
            let vals = scalar.eval_comb(&pi, &[Zero, Zero, Zero]);
            for (idx, v) in vals.iter().enumerate() {
                let bit = (packed_vals[idx] >> pat) & 1 == 1;
                assert_eq!(v.to_bool(), Some(bit), "node {idx} pattern {pat}");
            }
        }
    }

    #[test]
    fn buffer_chain_delay_free_propagation() {
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a");
        b.add_gate("b1", GateKind::Buf, &["a"]);
        b.add_gate("b2", GateKind::Not, &["b1"]);
        b.mark_output("b2");
        let c = b.build().unwrap();
        let sim = GoodSimulator::new(&c);
        let vals = sim.eval_comb(&[One], &[]);
        assert_eq!(sim.outputs(&vals), vec![Zero]);
    }

    #[test]
    #[should_panic]
    fn wrong_pi_length_panics() {
        let c = suite::s27();
        let sim = GoodSimulator::new(&c);
        let _ = sim.eval_comb(&[Zero; 3], &[Zero; 3]);
    }
}
