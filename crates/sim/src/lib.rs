//! Simulation substrate: good-machine logic simulation, the FAUSIM
//! sequential fault simulator and the TDsim robust delay-fault simulator.
//!
//! Section 5 of the paper splits fault simulation into three phases. Each
//! phase now exists in two forms — the scalar reference implementation and
//! a bit-parallel (64-lane) variant that the ATPG drop loop runs — and the
//! scalar form is the correctness oracle the packed form is
//! differential-tested against:
//!
//! 1. *"Simulation of the good machine for all time frames of the
//!    initialization and for the fast clock frame"* — [`goodsim`], a
//!    3-valued sequential simulator (plus the 64-bit two-valued
//!    [`ParallelSimulator`] for random-pattern fault grading), and
//!    [`packed::PackedGoodSim`], the two-bit-plane 3-valued simulator that
//!    evaluates 64 independent Kleene patterns per sweep.
//! 2. *"Stuck-at fault simulation of the propagation phase for all PPOs
//!    where possibly fault effects can occur"* — [`fausim`], which injects
//!    a `D`/`D̄` state difference at a pseudo primary input and propagates
//!    it through fault-free (slow-clock) frames.
//!    [`Fausim::propagate_state_diffs_packed`] runs **one lane per PPO**:
//!    all candidate state differences of a sequence propagate in a single
//!    pass instead of `num_dffs` sequential walks.
//! 3. *"Delay fault simulation of the fast time frame by critical path
//!    tracing"* — [`tdsim`], working on the two-frame 8-valued waveform
//!    produced by [`waveform`], including the paper's *invalidation* check
//!    for faults observed through a PPO.
//!    [`detected_delay_faults_packed`] packs **one candidate fault per
//!    lane** ([`gdf_algebra::packed::PackedWave`] bit-planes) and
//!    classifies up to 64 faults per netlist sweep over the union of their
//!    output cones.
//!
//! The packed sweeps share [`SimScratch`], a bundle of reusable node-value
//! buffers: per-sequence hot loops allocate nothing after warm-up.

pub mod event;
pub mod fausim;
pub mod goodsim;
pub mod grading;
pub mod packed;
pub mod tdsim;
pub mod tfsim;
pub mod waveform;

pub use event::EventSimulator;
pub use fausim::{Fausim, PropagationOutcome};
pub use goodsim::{GoodSimulator, ParallelSimulator};
pub use grading::{grade_filled_sequence, grade_filled_sequence_transition, GradeScratch};
pub use packed::{PackedGoodSim, PackedLogic, SimScratch};
pub use tdsim::{detected_delay_faults, detected_delay_faults_packed, DelayObservation};
pub use tfsim::{detected_transition_faults, detected_transition_faults_packed};
pub use waveform::{two_frame_values, two_frame_values_into};

/// The unified engine's fault-parallel orchestration shares simulator
/// instances across worker threads, so every simulator must stay free of
/// interior mutability: all scratch state lives in per-call locals (or in
/// an explicitly passed [`SimScratch`]). These compile-time assertions pin
/// that down — adding a `RefCell`/`Cell` to a simulator becomes a build
/// error here rather than a data race there.
const _: () = {
    const fn assert_sync_simulators<T: Send + Sync>() {}
    assert_sync_simulators::<Fausim<'_>>();
    assert_sync_simulators::<GoodSimulator<'_>>();
    assert_sync_simulators::<ParallelSimulator<'_>>();
    assert_sync_simulators::<PackedGoodSim<'_>>();
    assert_sync_simulators::<EventSimulator<'_>>();
};
