//! Simulation substrate: good-machine logic simulation, the FAUSIM
//! sequential fault simulator and the TDsim robust delay-fault simulator.
//!
//! Section 5 of the paper splits fault simulation into three phases, which
//! map onto this crate as follows:
//!
//! 1. *"Simulation of the good machine for all time frames of the
//!    initialization and for the fast clock frame"* — [`goodsim`], a
//!    3-valued sequential simulator (plus a 64-bit parallel-pattern variant
//!    used for fault grading and benches).
//! 2. *"Stuck-at fault simulation of the propagation phase for all PPOs
//!    where possibly fault effects can occur"* — [`fausim`], which injects a
//!    `D`/`D̄` state difference at a pseudo primary input and propagates it
//!    through fault-free (slow-clock) frames; it also provides full
//!    sequential single-stuck-at simulation for the SEMILET substrate.
//! 3. *"Delay fault simulation of the fast time frame by critical path
//!    tracing"* — [`tdsim`], working on the two-frame 8-valued waveform
//!    produced by [`waveform`], including the paper's *invalidation* check
//!    for faults observed through a PPO.

pub mod event;
pub mod fausim;
pub mod goodsim;
pub mod tdsim;
pub mod waveform;

pub use event::EventSimulator;
pub use fausim::{Fausim, PropagationOutcome};
pub use goodsim::{GoodSimulator, ParallelSimulator};
pub use tdsim::{detected_delay_faults, DelayObservation};
pub use waveform::two_frame_values;

/// The unified engine's fault-parallel orchestration shares simulator
/// instances across worker threads, so every simulator must stay free of
/// interior mutability: all scratch state lives in per-call locals. These
/// compile-time assertions pin that down — adding a `RefCell`/`Cell` to a
/// simulator becomes a build error here rather than a data race there.
const _: () = {
    const fn assert_sync_simulators<T: Send + Sync>() {}
    assert_sync_simulators::<Fausim<'_>>();
    assert_sync_simulators::<GoodSimulator<'_>>();
    assert_sync_simulators::<ParallelSimulator<'_>>();
    assert_sync_simulators::<EventSimulator<'_>>();
};
