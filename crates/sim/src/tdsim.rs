//! TDsim — robust delay-fault simulation of the fast time frame (paper §5,
//! phase 3).
//!
//! Works on the fault-free two-frame waveform from [`crate::waveform`]. For
//! every still-undetected candidate fault whose site actually shows the
//! provoking transition, the fault mark (`R → Rc` / `F → Fc`) is traced
//! through the fault's output cone using the 8-valued algebra itself, so
//! the sensitization and robustness conditions are *identical by
//! construction* to the ones TDgen generates with. This is the
//! critical-path-tracing pass of the paper implemented as cone-limited mark
//! propagation (same results, evaluated from the fault site toward the
//! observation points instead of backwards from the outputs).
//!
//! The paper's *invalidation* rule is enforced: a fault observed only at a
//! PPO counts as detected only if (a) that PPO was shown observable by the
//! propagation phase and (b) the fault effect cannot corrupt any state bit
//! the propagation phase relies on.

use gdf_algebra::delay::{eval_gate, DelayValue};
use gdf_netlist::{Circuit, DelayFault, DelayFaultKind, NodeId};

/// Where a delay fault effect was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayObservation {
    /// Observed directly at a primary output.
    AtPo(NodeId),
    /// Observed at a pseudo primary output (a flip-flop D net) that the
    /// propagation phase makes observable.
    AtPpo(NodeId),
}

/// Simulates all candidate `faults` against one two-pattern test.
///
/// * `waveform` — fault-free two-frame values from
///   [`crate::waveform::two_frame_values`];
/// * `observable_ppos` — PPO nets whose latched fault effect is known to
///   reach a PO in the propagation phase (FAUSIM phase 2 result);
/// * `required_state_ppos` — PPO nets whose (steady) values the propagation
///   phase relies on; a fault corrupting one of these is *invalidated*.
///
/// Returns `(fault index, observation)` pairs for every robustly detected
/// fault.
///
/// # Example
///
/// ```
/// use gdf_netlist::{suite, FaultUniverse};
/// use gdf_sim::{detected_delay_faults, two_frame_values};
///
/// let c = suite::s27();
/// // G3 falls and G0 rises: G11 = NOR(G5, G9) falls, observed at G17.
/// let w = two_frame_values(
///     &c,
///     &[false, false, false, true],
///     &[true, false, false, false],
///     &[false, false, false],
/// );
/// let faults = FaultUniverse::default().delay_faults(&c);
/// let hits = detected_delay_faults(&c, &w, &faults, &[], &[]);
/// assert!(!hits.is_empty());
/// ```
pub fn detected_delay_faults(
    circuit: &Circuit,
    waveform: &[DelayValue],
    faults: &[DelayFault],
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
) -> Vec<(usize, DelayObservation)> {
    assert_eq!(waveform.len(), circuit.num_nodes(), "waveform length");
    let ppos = circuit.ppos();
    let mut detected = Vec::new();
    for (idx, fault) in faults.iter().enumerate() {
        if let Some(obs) = trace_one(
            circuit,
            waveform,
            *fault,
            &ppos,
            observable_ppos,
            required_state_ppos,
        ) {
            detected.push((idx, obs));
        }
    }
    detected
}

/// Traces one fault; `None` if not robustly detected by this test.
fn trace_one(
    circuit: &Circuit,
    waveform: &[DelayValue],
    fault: DelayFault,
    ppos: &[NodeId],
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
) -> Option<DelayObservation> {
    let needed = match fault.kind {
        DelayFaultKind::SlowToRise => DelayValue::R,
        DelayFaultKind::SlowToFall => DelayValue::F,
    };
    let stem_val = waveform[fault.site.stem.index()];
    if stem_val != needed {
        return None; // fault not provoked by this vector pair
    }
    let marked_stem = stem_val.with_fault_mark().expect("transition");

    // A branch fault on a flip-flop D input latches the wrong value
    // directly: the only observation point is that PPO, and nothing else
    // sees the mark within this frame pair.
    if let Some((sink, _)) = fault.site.branch {
        if !circuit.node(sink).kind().is_combinational() {
            let ppo = fault.site.stem;
            if !observable_ppos.contains(&ppo) {
                return None;
            }
            for &req in required_state_ppos {
                if req != ppo && !waveform[req.index()].is_steady_clean() {
                    return None;
                }
            }
            return Some(DelayObservation::AtPpo(ppo));
        }
    }

    // Cone-limited re-evaluation with the mark injected.
    let seed = match fault.site.branch {
        None => fault.site.stem,
        Some((sink, _)) => sink,
    };
    let in_cone = circuit.output_cone(seed);
    let mut marked = waveform.to_vec();
    if fault.site.branch.is_none() {
        marked[fault.site.stem.index()] = marked_stem;
    }
    for &gate in circuit.topo_order() {
        if !in_cone[gate.index()] {
            continue;
        }
        if gate == fault.site.stem && fault.site.branch.is_none() {
            continue; // keep the injected mark on the stem itself
        }
        let node = circuit.node(gate);
        let ins: Vec<DelayValue> = node
            .fanin()
            .iter()
            .enumerate()
            .map(|(pin, &f)| {
                if let Some((sink, fpin)) = fault.site.branch {
                    if f == fault.site.stem && sink == gate && fpin == pin as u8 {
                        return marked_stem;
                    }
                }
                marked[f.index()]
            })
            .collect();
        marked[gate.index()] = eval_gate(node.kind(), &ins);
    }

    // Direct observation at a PO wins.
    for &po in circuit.outputs() {
        if marked[po.index()].carries_fault() {
            return Some(DelayObservation::AtPo(po));
        }
    }

    // Observation via a PPO the propagation phase covers — subject to the
    // invalidation check.
    let mut ppo_hit = None;
    for &ppo in ppos {
        if marked[ppo.index()].carries_fault() && observable_ppos.contains(&ppo) {
            ppo_hit = Some(ppo);
            break;
        }
    }
    let ppo = ppo_hit?;
    // Invalidation: the fault effect must not be able to corrupt any state
    // bit the propagation phase requires, and those bits must be steady and
    // hazard-free in the good waveform.
    for &req in required_state_ppos {
        if req == ppo {
            continue;
        }
        if marked[req.index()].carries_fault() || !waveform[req.index()].is_steady_clean() {
            return None;
        }
    }
    Some(DelayObservation::AtPpo(ppo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::two_frame_values;
    use gdf_netlist::{CircuitBuilder, FaultSite, FaultUniverse, GateKind};

    fn fault(site: FaultSite, kind: DelayFaultKind) -> DelayFault {
        DelayFault { site, kind }
    }

    #[test]
    fn inverter_chain_detects_both_polarities() {
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a");
        b.add_gate("n1", GateKind::Not, &["a"]);
        b.add_gate("n2", GateKind::Not, &["n1"]);
        b.mark_output("n2");
        let c = b.build().unwrap();
        let n1 = c.node_by_name("n1").unwrap();
        let w = two_frame_values(&c, &[false], &[true], &[]);
        // a rises, n1 falls, n2 rises.
        let faults = vec![
            fault(FaultSite::on_stem(n1), DelayFaultKind::SlowToFall),
            fault(FaultSite::on_stem(n1), DelayFaultKind::SlowToRise),
        ];
        let hits = detected_delay_faults(&c, &w, &faults, &[], &[]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0, "only the StF on the falling n1 is provoked");
        assert!(matches!(hits[0].1, DelayObservation::AtPo(_)));
    }

    #[test]
    fn masking_side_input_blocks_detection() {
        // y = AND(a, b): a rises, but b = 0 masks the output.
        let mut bld = CircuitBuilder::new("mask");
        bld.add_input("a");
        bld.add_input("b");
        bld.add_gate("y", GateKind::And, &["a", "b"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let a = c.node_by_name("a").unwrap();
        let f = fault(FaultSite::on_stem(a), DelayFaultKind::SlowToRise);
        let w = two_frame_values(&c, &[false, false], &[true, false], &[]);
        assert!(detected_delay_faults(&c, &w, &[f], &[], &[]).is_empty());
        let w = two_frame_values(&c, &[false, true], &[true, true], &[]);
        assert_eq!(detected_delay_faults(&c, &w, &[f], &[], &[]).len(), 1);
    }

    #[test]
    fn non_robust_condition_rejected() {
        // y = AND(a, b): a falls (StF target) while b also transitions —
        // not a robust test even though endpoints would show the effect.
        let mut bld = CircuitBuilder::new("nonrobust");
        bld.add_input("a");
        bld.add_input("b");
        bld.add_gate("y", GateKind::And, &["a", "b"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let a = c.node_by_name("a").unwrap();
        let f = fault(FaultSite::on_stem(a), DelayFaultKind::SlowToFall);
        // b rises while a falls: off-path input not steady → not robust.
        let w = two_frame_values(&c, &[true, false], &[false, true], &[]);
        assert!(detected_delay_faults(&c, &w, &[f], &[], &[]).is_empty());
        // b steady 1: robust.
        let w = two_frame_values(&c, &[true, true], &[false, true], &[]);
        assert_eq!(detected_delay_faults(&c, &w, &[f], &[], &[]).len(), 1);
    }

    #[test]
    fn branch_fault_distinct_from_stem() {
        // s fans out to y1 = BUF(s) and y2 = BUF(s); branch fault to y1 is
        // seen at y1 only, stem fault at both.
        let mut bld = CircuitBuilder::new("fan");
        bld.add_input("a");
        bld.add_gate("s", GateKind::Buf, &["a"]);
        bld.add_gate("y1", GateKind::Buf, &["s"]);
        bld.add_gate("y2", GateKind::Buf, &["s"]);
        bld.mark_output("y1");
        bld.mark_output("y2");
        let c = bld.build().unwrap();
        let s = c.node_by_name("s").unwrap();
        let y1 = c.node_by_name("y1").unwrap();
        let w = two_frame_values(&c, &[false], &[true], &[]);
        let branch = fault(FaultSite::on_branch(s, y1, 0), DelayFaultKind::SlowToRise);
        let hits = detected_delay_faults(&c, &w, &[branch], &[], &[]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, DelayObservation::AtPo(y1));
    }

    #[test]
    fn ppo_observation_requires_observability() {
        // d = NOT(a) feeds a DFF; no PO sees the fault in the fast frame.
        let mut bld = CircuitBuilder::new("latch");
        bld.add_input("a");
        bld.add_dff("q", "d");
        bld.add_gate("d", GateKind::Not, &["a"]);
        bld.add_gate("y", GateKind::Buf, &["q"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let d = c.node_by_name("d").unwrap();
        let f = fault(FaultSite::on_stem(d), DelayFaultKind::SlowToFall);
        let w = two_frame_values(&c, &[false], &[true], &[false]);
        // Without observability info: undetected.
        assert!(detected_delay_faults(&c, &w, &[f], &[], &[]).is_empty());
        // Declared observable by the propagation phase: detected at the PPO.
        let hits = detected_delay_faults(&c, &w, &[f], &[d], &[]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, DelayObservation::AtPpo(d));
    }

    #[test]
    fn invalidation_blocks_ppo_detection() {
        // Fault effect reaches both DFF d-nets; propagation relies on d2's
        // steady value → invalidated.
        let mut bld = CircuitBuilder::new("invalid");
        bld.add_input("a");
        bld.add_dff("q1", "d1");
        bld.add_dff("q2", "d2");
        bld.add_gate("s", GateKind::Not, &["a"]);
        bld.add_gate("d1", GateKind::Buf, &["s"]);
        bld.add_gate("d2", GateKind::Buf, &["s"]);
        bld.add_gate("y", GateKind::And, &["q1", "q2"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let s = c.node_by_name("s").unwrap();
        let d1 = c.node_by_name("d1").unwrap();
        let d2 = c.node_by_name("d2").unwrap();
        let f = fault(FaultSite::on_stem(s), DelayFaultKind::SlowToFall);
        let w = two_frame_values(&c, &[false], &[true], &[false, false]);
        // Observable at d1, but d2 also carries the effect and is required.
        assert!(detected_delay_faults(&c, &w, &[f], &[d1], &[d2]).is_empty());
        // If the propagation doesn't rely on d2, detection stands.
        assert_eq!(detected_delay_faults(&c, &w, &[f], &[d1], &[]).len(), 1);
    }

    #[test]
    fn s27_exhaustive_pairs_detect_faults_at_po() {
        let c = gdf_netlist::suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let mut total_hits = 0usize;
        for v1pat in 0u32..16 {
            for v2pat in 0u32..16 {
                let v1: Vec<bool> = (0..4).map(|i| v1pat & (1 << i) != 0).collect();
                let v2: Vec<bool> = (0..4).map(|i| v2pat & (1 << i) != 0).collect();
                let w = two_frame_values(&c, &v1, &v2, &[false, false, false]);
                let hits = detected_delay_faults(&c, &w, &faults, &[], &[]);
                // Without observable PPOs every hit must be at the PO.
                assert!(hits
                    .iter()
                    .all(|&(_, obs)| matches!(obs, DelayObservation::AtPo(_))));
                total_hits += hits.len();
            }
        }
        assert!(total_hits > 0, "some pair must robustly detect a fault");
    }
}
