//! TDsim — robust delay-fault simulation of the fast time frame (paper §5,
//! phase 3).
//!
//! Works on the fault-free two-frame waveform from [`crate::waveform`]. For
//! every still-undetected candidate fault whose site actually shows the
//! provoking transition, the fault mark (`R → Rc` / `F → Fc`) is traced
//! through the fault's output cone using the 8-valued algebra itself, so
//! the sensitization and robustness conditions are *identical by
//! construction* to the ones TDgen generates with. This is the
//! critical-path-tracing pass of the paper implemented as cone-limited mark
//! propagation (same results, evaluated from the fault site toward the
//! observation points instead of backwards from the outputs).
//!
//! The paper's *invalidation* rule is enforced: a fault observed only at a
//! PPO counts as detected only if (a) that PPO was shown observable by the
//! propagation phase and (b) the fault effect cannot corrupt any state bit
//! the propagation phase relies on.

use crate::packed::SimScratch;
use gdf_algebra::delay::{eval_gate, DelayValue};
use gdf_algebra::packed::{eval_gate_packed, PackedWave};
use gdf_netlist::{Circuit, DelayFault, DelayFaultKind, GateKind, NodeId};

/// Where a delay fault effect was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayObservation {
    /// Observed directly at a primary output.
    AtPo(NodeId),
    /// Observed at a pseudo primary output (a flip-flop D net) that the
    /// propagation phase makes observable.
    AtPpo(NodeId),
}

/// Simulates all candidate `faults` against one two-pattern test.
///
/// * `waveform` — fault-free two-frame values from
///   [`crate::waveform::two_frame_values`];
/// * `observable_ppos` — PPO nets whose latched fault effect is known to
///   reach a PO in the propagation phase (FAUSIM phase 2 result);
/// * `required_state_ppos` — PPO nets whose (steady) values the propagation
///   phase relies on; a fault corrupting one of these is *invalidated*.
///
/// Returns `(fault index, observation)` pairs for every robustly detected
/// fault.
///
/// # Example
///
/// ```
/// use gdf_netlist::{suite, FaultUniverse};
/// use gdf_sim::{detected_delay_faults, two_frame_values};
///
/// let c = suite::s27();
/// // G3 falls and G0 rises: G11 = NOR(G5, G9) falls, observed at G17.
/// let w = two_frame_values(
///     &c,
///     &[false, false, false, true],
///     &[true, false, false, false],
///     &[false, false, false],
/// );
/// let faults = FaultUniverse::default().delay_faults(&c);
/// let hits = detected_delay_faults(&c, &w, &faults, &[], &[]);
/// assert!(!hits.is_empty());
/// ```
pub fn detected_delay_faults(
    circuit: &Circuit,
    waveform: &[DelayValue],
    faults: &[DelayFault],
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
) -> Vec<(usize, DelayObservation)> {
    assert_eq!(waveform.len(), circuit.num_nodes(), "waveform length");
    let ppos = circuit.ppos();
    let mut detected = Vec::new();
    for (idx, fault) in faults.iter().enumerate() {
        if let Some(obs) = trace_one(
            circuit,
            waveform,
            *fault,
            ppos,
            observable_ppos,
            required_state_ppos,
        ) {
            detected.push((idx, obs));
        }
    }
    detected
}

/// Traces one fault; `None` if not robustly detected by this test.
fn trace_one(
    circuit: &Circuit,
    waveform: &[DelayValue],
    fault: DelayFault,
    ppos: &[NodeId],
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
) -> Option<DelayObservation> {
    let needed = match fault.kind {
        DelayFaultKind::SlowToRise => DelayValue::R,
        DelayFaultKind::SlowToFall => DelayValue::F,
    };
    let stem_val = waveform[fault.site.stem.index()];
    if stem_val != needed {
        return None; // fault not provoked by this vector pair
    }
    let marked_stem = stem_val.with_fault_mark().expect("transition");

    // A branch fault on a flip-flop D input latches the wrong value
    // directly: the only observation point is that PPO, and nothing else
    // sees the mark within this frame pair.
    if let Some((sink, _)) = fault.site.branch {
        if !circuit.node(sink).kind().is_combinational() {
            let ppo = fault.site.stem;
            if !observable_ppos.contains(&ppo) {
                return None;
            }
            for &req in required_state_ppos {
                if req != ppo && !waveform[req.index()].is_steady_clean() {
                    return None;
                }
            }
            return Some(DelayObservation::AtPpo(ppo));
        }
    }

    // Cone-limited re-evaluation with the mark injected.
    let seed = match fault.site.branch {
        None => fault.site.stem,
        Some((sink, _)) => sink,
    };
    let mut marked = waveform.to_vec();
    if fault.site.branch.is_none() {
        marked[fault.site.stem.index()] = marked_stem;
    }
    let mut ins: Vec<DelayValue> = Vec::with_capacity(8);
    for (gate, kind, fanins) in circuit.gates_levelized() {
        if !circuit.cone_contains(seed, gate) {
            continue;
        }
        if gate == fault.site.stem && fault.site.branch.is_none() {
            continue; // keep the injected mark on the stem itself
        }
        ins.clear();
        ins.extend(fanins.iter().enumerate().map(|(pin, &f)| {
            if let Some((sink, fpin)) = fault.site.branch {
                if f == fault.site.stem && sink == gate && fpin == pin as u8 {
                    return marked_stem;
                }
            }
            marked[f.index()]
        }));
        marked[gate.index()] = eval_gate(kind, &ins);
    }

    // Direct observation at a PO wins.
    for &po in circuit.outputs() {
        if marked[po.index()].carries_fault() {
            return Some(DelayObservation::AtPo(po));
        }
    }

    // Observation via a PPO the propagation phase covers — subject to the
    // invalidation check.
    let mut ppo_hit = None;
    for &ppo in ppos {
        if marked[ppo.index()].carries_fault() && observable_ppos.contains(&ppo) {
            ppo_hit = Some(ppo);
            break;
        }
    }
    let ppo = ppo_hit?;
    // Invalidation: the fault effect must not be able to corrupt any state
    // bit the propagation phase requires, and those bits must be steady and
    // hazard-free in the good waveform.
    for &req in required_state_ppos {
        if req == ppo {
            continue;
        }
        if marked[req.index()].carries_fault() || !waveform[req.index()].is_steady_clean() {
            return None;
        }
    }
    Some(DelayObservation::AtPpo(ppo))
}

/// Word-parallel variant of [`detected_delay_faults`]: classifies up to 64
/// candidate faults per packed netlist sweep (one fault per bit lane)
/// instead of one cone-limited re-evaluation per fault. Results are
/// element-identical to the scalar function — same faults, same
/// observations, same order — which the differential tests pin down.
///
/// # Panics
///
/// Panics if `waveform` does not have one value per node.
pub fn detected_delay_faults_packed(
    circuit: &Circuit,
    waveform: &[DelayValue],
    faults: &[DelayFault],
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
    scratch: &mut SimScratch,
) -> Vec<(usize, DelayObservation)> {
    assert_eq!(waveform.len(), circuit.num_nodes(), "waveform length");
    // Broadcast the fault-free waveform once; every batch injects into it
    // and restores exactly the nodes its union cone touched.
    scratch.packed_wave.clear();
    scratch
        .packed_wave
        .extend(waveform.iter().map(|&v| PackedWave::splat(v)));
    let mut detected = Vec::new();
    // Lanes are precious: unprovoked faults are screened out up front and
    // the direct branch-to-DFF case needs no simulation, so only faults
    // that actually need the sweep occupy lanes — a waveform that
    // provokes half the universe still fills whole 64-lane batches.
    let placeholder = DelayFault {
        site: gdf_netlist::FaultSite::on_stem(NodeId(0)),
        kind: DelayFaultKind::SlowToRise,
    };
    let mut batch: [(usize, DelayFault); 64] = [(0, placeholder); 64];
    let mut filled = 0;
    for (idx, fault) in faults.iter().enumerate() {
        let needed = match fault.kind {
            DelayFaultKind::SlowToRise => DelayValue::R,
            DelayFaultKind::SlowToFall => DelayValue::F,
        };
        if waveform[fault.site.stem.index()] != needed {
            continue; // fault not provoked by this vector pair
        }
        if let Some((sink, _)) = fault.site.branch {
            if !circuit.node(sink).kind().is_combinational() {
                // A branch fault on a flip-flop D input: the only
                // observation point is that PPO (same rule as trace_one).
                let ppo = fault.site.stem;
                if observable_ppos.contains(&ppo)
                    && required_state_ppos
                        .iter()
                        .all(|&req| req == ppo || waveform[req.index()].is_steady_clean())
                {
                    detected.push((idx, DelayObservation::AtPpo(ppo)));
                }
                continue;
            }
        }
        batch[filled] = (idx, *fault);
        filled += 1;
        if filled == 64 {
            classify_batch(
                circuit,
                waveform,
                &batch[..filled],
                observable_ppos,
                required_state_ppos,
                scratch,
                &mut detected,
            );
            filled = 0;
        }
    }
    if filled > 0 {
        classify_batch(
            circuit,
            waveform,
            &batch[..filled],
            observable_ppos,
            required_state_ppos,
            scratch,
            &mut detected,
        );
    }
    // Direct hits and batch hits interleave; the scalar reference reports
    // in fault-list order.
    detected.sort_unstable_by_key(|&(idx, _)| idx);
    detected
}

/// Evaluates one gate over packed node values addressed through its fanin
/// list — the fold-direct twin of
/// [`gdf_algebra::packed::eval_gate_packed`] (same fold order, so
/// identical results), without gathering an input slice.
fn eval_packed_indexed(kind: GateKind, fanins: &[NodeId], values: &[PackedWave]) -> PackedWave {
    let v = |f: &NodeId| values[f.index()];
    let first = v(&fanins[0]);
    match kind {
        GateKind::Buf => first,
        GateKind::Not => first.not(),
        GateKind::And => fanins[1..].iter().fold(first, |a, f| a.and2(v(f))),
        GateKind::Nand => fanins[1..].iter().fold(first, |a, f| a.and2(v(f))).not(),
        GateKind::Or => fanins[1..].iter().fold(first, |a, f| a.or2(v(f))),
        GateKind::Nor => fanins[1..].iter().fold(first, |a, f| a.or2(v(f))).not(),
        GateKind::Xor => fanins[1..].iter().fold(first, |a, f| a.xor2(v(f))),
        GateKind::Xnor => fanins[1..].iter().fold(first, |a, f| a.xor2(v(f))).not(),
        GateKind::Input | GateKind::Dff => {
            panic!("eval_packed_indexed called on non-combinational kind {kind:?}")
        }
    }
}

/// Classifies one ≤64-fault batch — every entry provoked, with a
/// combinational observation path — in a single packed sweep over the
/// union of the faults' output cones.
fn classify_batch(
    circuit: &Circuit,
    waveform: &[DelayValue],
    batch: &[(usize, DelayFault)],
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
    scratch: &mut SimScratch,
    detected: &mut Vec<(usize, DelayObservation)>,
) {
    let mut resolved: [Option<DelayObservation>; 64] = [None; 64];
    let sim_lanes = if batch.len() == 64 {
        !0u64
    } else {
        (1u64 << batch.len()) - 1
    };
    scratch.stem_mask.resize(circuit.num_nodes(), 0);
    scratch.stem_val.resize(circuit.num_nodes(), DelayValue::S0);
    scratch.branch_flag.resize(circuit.num_nodes(), false);
    scratch.stem_nodes.clear();
    scratch.branch_list.clear();
    scratch.cone_union.clear();
    scratch.cone_union.resize(circuit.cone_stride(), 0);

    // Injection bookkeeping, one lane per fault.
    for (k, &(_, fault)) in batch.iter().enumerate() {
        let marked_stem = waveform[fault.site.stem.index()]
            .with_fault_mark()
            .expect("batched faults are provoked transitions");
        let seed = match fault.site.branch {
            None => {
                let stem = fault.site.stem.index();
                if scratch.stem_mask[stem] == 0 {
                    scratch.stem_nodes.push(fault.site.stem.0);
                    scratch.stem_val[stem] = marked_stem;
                }
                debug_assert_eq!(scratch.stem_val[stem], marked_stem);
                scratch.stem_mask[stem] |= 1 << k;
                fault.site.stem
            }
            Some((sink, pin)) => {
                if let Some(entry) = scratch
                    .branch_list
                    .iter_mut()
                    .find(|e| e.0 == sink.0 && e.1 == pin)
                {
                    debug_assert_eq!(entry.3, marked_stem);
                    entry.2 |= 1 << k;
                } else {
                    scratch.branch_list.push((sink.0, pin, 1 << k, marked_stem));
                    scratch.branch_flag[sink.index()] = true;
                }
                sink
            }
        };
        for (u, &w) in scratch.cone_union.iter_mut().zip(circuit.cone_words(seed)) {
            *u |= w;
        }
    }

    {
        // One packed sweep: all lanes start from the broadcast fault-free
        // waveform (prepared by the caller); marks are injected per lane
        // and propagated through the union of the cones (outside a lane's
        // own cone its values equal the broadcast, exactly as the scalar
        // cone-limited trace).
        let values = &mut scratch.packed_wave;
        for &node in &scratch.stem_nodes {
            let i = node as usize;
            values[i] =
                values[i].select(scratch.stem_mask[i], PackedWave::splat(scratch.stem_val[i]));
        }
        let wave_ins = &mut scratch.wave_ins;
        for (gate, kind, fanins) in circuit.gates_levelized() {
            let gi = gate.index();
            if scratch.cone_union[gi / 64] >> (gi % 64) & 1 == 0 {
                continue;
            }
            let mut out = if scratch.branch_flag[gi] {
                // Rare: gather the inputs with the per-lane branch
                // overrides applied.
                wave_ins.clear();
                for (pin, &f) in fanins.iter().enumerate() {
                    let mut v = values[f.index()];
                    for &(sink, fpin, mask, marked) in &scratch.branch_list {
                        if sink == gate.0 && fpin == pin as u8 {
                            v = v.select(mask, PackedWave::splat(marked));
                        }
                    }
                    wave_ins.push(v);
                }
                eval_gate_packed(kind, wave_ins)
            } else {
                eval_packed_indexed(kind, fanins, values)
            };
            let stem_lanes = scratch.stem_mask[gi];
            if stem_lanes != 0 {
                // Keep the injected mark on the stem itself.
                out = out.select(stem_lanes, PackedWave::splat(scratch.stem_val[gi]));
            }
            values[gi] = out;
        }

        // Per-lane observation, mirroring trace_one's order: first PO in
        // output order wins; otherwise the first observable PPO, subject
        // to the invalidation rule.
        let mut lanes = sim_lanes;
        while lanes != 0 {
            let k = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            let bit = |w: &PackedWave| w.car >> k & 1 == 1;
            let po_hit = circuit
                .outputs()
                .iter()
                .find(|&&po| bit(&values[po.index()]));
            if let Some(&po) = po_hit {
                resolved[k] = Some(DelayObservation::AtPo(po));
                continue;
            }
            let ppo_hit = circuit
                .ppos()
                .iter()
                .find(|&&ppo| bit(&values[ppo.index()]) && observable_ppos.contains(&ppo));
            if let Some(&ppo) = ppo_hit {
                let invalidated = required_state_ppos.iter().any(|&req| {
                    req != ppo
                        && (bit(&values[req.index()]) || !waveform[req.index()].is_steady_clean())
                });
                if !invalidated {
                    resolved[k] = Some(DelayObservation::AtPpo(ppo));
                }
            }
        }

        // Restore the broadcast for the next chunk: every node this chunk
        // could have dirtied has its union-cone bit set (each seed lies in
        // its own cone, so injected sources are covered too). The sparse
        // injection tables reset the same way.
        for (w, &dirty) in scratch.cone_union.iter().enumerate() {
            let mut bits = dirty;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                scratch.packed_wave[i] = PackedWave::splat(waveform[i]);
            }
        }
        for &node in &scratch.stem_nodes {
            scratch.stem_mask[node as usize] = 0;
        }
        for &(sink, ..) in &scratch.branch_list {
            scratch.branch_flag[sink as usize] = false;
        }
    }

    for (k, obs) in resolved.iter().take(batch.len()).enumerate() {
        if let Some(obs) = obs {
            detected.push((batch[k].0, *obs));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::two_frame_values;
    use gdf_netlist::{CircuitBuilder, FaultSite, FaultUniverse, GateKind};

    fn fault(site: FaultSite, kind: DelayFaultKind) -> DelayFault {
        DelayFault { site, kind }
    }

    #[test]
    fn inverter_chain_detects_both_polarities() {
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a");
        b.add_gate("n1", GateKind::Not, &["a"]);
        b.add_gate("n2", GateKind::Not, &["n1"]);
        b.mark_output("n2");
        let c = b.build().unwrap();
        let n1 = c.node_by_name("n1").unwrap();
        let w = two_frame_values(&c, &[false], &[true], &[]);
        // a rises, n1 falls, n2 rises.
        let faults = vec![
            fault(FaultSite::on_stem(n1), DelayFaultKind::SlowToFall),
            fault(FaultSite::on_stem(n1), DelayFaultKind::SlowToRise),
        ];
        let hits = detected_delay_faults(&c, &w, &faults, &[], &[]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0, "only the StF on the falling n1 is provoked");
        assert!(matches!(hits[0].1, DelayObservation::AtPo(_)));
    }

    #[test]
    fn masking_side_input_blocks_detection() {
        // y = AND(a, b): a rises, but b = 0 masks the output.
        let mut bld = CircuitBuilder::new("mask");
        bld.add_input("a");
        bld.add_input("b");
        bld.add_gate("y", GateKind::And, &["a", "b"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let a = c.node_by_name("a").unwrap();
        let f = fault(FaultSite::on_stem(a), DelayFaultKind::SlowToRise);
        let w = two_frame_values(&c, &[false, false], &[true, false], &[]);
        assert!(detected_delay_faults(&c, &w, &[f], &[], &[]).is_empty());
        let w = two_frame_values(&c, &[false, true], &[true, true], &[]);
        assert_eq!(detected_delay_faults(&c, &w, &[f], &[], &[]).len(), 1);
    }

    #[test]
    fn non_robust_condition_rejected() {
        // y = AND(a, b): a falls (StF target) while b also transitions —
        // not a robust test even though endpoints would show the effect.
        let mut bld = CircuitBuilder::new("nonrobust");
        bld.add_input("a");
        bld.add_input("b");
        bld.add_gate("y", GateKind::And, &["a", "b"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let a = c.node_by_name("a").unwrap();
        let f = fault(FaultSite::on_stem(a), DelayFaultKind::SlowToFall);
        // b rises while a falls: off-path input not steady → not robust.
        let w = two_frame_values(&c, &[true, false], &[false, true], &[]);
        assert!(detected_delay_faults(&c, &w, &[f], &[], &[]).is_empty());
        // b steady 1: robust.
        let w = two_frame_values(&c, &[true, true], &[false, true], &[]);
        assert_eq!(detected_delay_faults(&c, &w, &[f], &[], &[]).len(), 1);
    }

    #[test]
    fn branch_fault_distinct_from_stem() {
        // s fans out to y1 = BUF(s) and y2 = BUF(s); branch fault to y1 is
        // seen at y1 only, stem fault at both.
        let mut bld = CircuitBuilder::new("fan");
        bld.add_input("a");
        bld.add_gate("s", GateKind::Buf, &["a"]);
        bld.add_gate("y1", GateKind::Buf, &["s"]);
        bld.add_gate("y2", GateKind::Buf, &["s"]);
        bld.mark_output("y1");
        bld.mark_output("y2");
        let c = bld.build().unwrap();
        let s = c.node_by_name("s").unwrap();
        let y1 = c.node_by_name("y1").unwrap();
        let w = two_frame_values(&c, &[false], &[true], &[]);
        let branch = fault(FaultSite::on_branch(s, y1, 0), DelayFaultKind::SlowToRise);
        let hits = detected_delay_faults(&c, &w, &[branch], &[], &[]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, DelayObservation::AtPo(y1));
    }

    #[test]
    fn ppo_observation_requires_observability() {
        // d = NOT(a) feeds a DFF; no PO sees the fault in the fast frame.
        let mut bld = CircuitBuilder::new("latch");
        bld.add_input("a");
        bld.add_dff("q", "d");
        bld.add_gate("d", GateKind::Not, &["a"]);
        bld.add_gate("y", GateKind::Buf, &["q"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let d = c.node_by_name("d").unwrap();
        let f = fault(FaultSite::on_stem(d), DelayFaultKind::SlowToFall);
        let w = two_frame_values(&c, &[false], &[true], &[false]);
        // Without observability info: undetected.
        assert!(detected_delay_faults(&c, &w, &[f], &[], &[]).is_empty());
        // Declared observable by the propagation phase: detected at the PPO.
        let hits = detected_delay_faults(&c, &w, &[f], &[d], &[]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, DelayObservation::AtPpo(d));
    }

    #[test]
    fn invalidation_blocks_ppo_detection() {
        // Fault effect reaches both DFF d-nets; propagation relies on d2's
        // steady value → invalidated.
        let mut bld = CircuitBuilder::new("invalid");
        bld.add_input("a");
        bld.add_dff("q1", "d1");
        bld.add_dff("q2", "d2");
        bld.add_gate("s", GateKind::Not, &["a"]);
        bld.add_gate("d1", GateKind::Buf, &["s"]);
        bld.add_gate("d2", GateKind::Buf, &["s"]);
        bld.add_gate("y", GateKind::And, &["q1", "q2"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let s = c.node_by_name("s").unwrap();
        let d1 = c.node_by_name("d1").unwrap();
        let d2 = c.node_by_name("d2").unwrap();
        let f = fault(FaultSite::on_stem(s), DelayFaultKind::SlowToFall);
        let w = two_frame_values(&c, &[false], &[true], &[false, false]);
        // Observable at d1, but d2 also carries the effect and is required.
        assert!(detected_delay_faults(&c, &w, &[f], &[d1], &[d2]).is_empty());
        // If the propagation doesn't rely on d2, detection stands.
        assert_eq!(detected_delay_faults(&c, &w, &[f], &[d1], &[]).len(), 1);
    }

    #[test]
    fn packed_matches_scalar_exhaustively_on_s27() {
        let c = gdf_netlist::suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let all_ppos = c.ppos().to_vec();
        let mut scratch = crate::SimScratch::default();
        for seed in 0u32..64 {
            let v1: Vec<bool> = (0..4).map(|i| seed & (1 << i) != 0).collect();
            let v2: Vec<bool> = (0..4).map(|i| seed & (32 >> i) != 0).collect();
            let st: Vec<bool> = (0..3).map(|i| seed & (1 << (i + 1)) != 0).collect();
            let w = two_frame_values(&c, &v1, &v2, &st);
            // Exercise the PPO-observation and invalidation paths too.
            let cases: [(&[gdf_netlist::NodeId], &[gdf_netlist::NodeId]); 3] = [
                (&[], &[]),
                (&all_ppos, &[]),
                (&all_ppos[..1], &all_ppos[1..]),
            ];
            for (obs, req) in cases {
                let scalar = detected_delay_faults(&c, &w, &faults, obs, req);
                let packed = detected_delay_faults_packed(&c, &w, &faults, obs, req, &mut scratch);
                assert_eq!(scalar, packed, "seed {seed} obs {obs:?} req {req:?}");
            }
        }
    }

    #[test]
    fn packed_handles_branch_and_dff_branch_faults() {
        // latch: d = NOT(a) feeds a DFF; fan: s branches to y1, y2.
        let mut bld = CircuitBuilder::new("mix");
        bld.add_input("a");
        bld.add_dff("q", "d");
        bld.add_gate("s", GateKind::Not, &["a"]);
        bld.add_gate("d", GateKind::Buf, &["s"]);
        bld.add_gate("y", GateKind::Buf, &["s"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let faults = FaultUniverse::default().delay_faults(&c);
        let d = c.node_by_name("d").unwrap();
        let mut scratch = crate::SimScratch::default();
        for (v1, v2) in [(false, true), (true, false)] {
            for st in [false, true] {
                let w = two_frame_values(&c, &[v1], &[v2], &[st]);
                for obs in [&[][..], &[d][..]] {
                    let scalar = detected_delay_faults(&c, &w, &faults, obs, &[]);
                    let packed =
                        detected_delay_faults_packed(&c, &w, &faults, obs, &[], &mut scratch);
                    assert_eq!(scalar, packed, "{v1}{v2} state {st} obs {obs:?}");
                }
            }
        }
    }

    #[test]
    fn s27_exhaustive_pairs_detect_faults_at_po() {
        let c = gdf_netlist::suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let mut total_hits = 0usize;
        for v1pat in 0u32..16 {
            for v2pat in 0u32..16 {
                let v1: Vec<bool> = (0..4).map(|i| v1pat & (1 << i) != 0).collect();
                let v2: Vec<bool> = (0..4).map(|i| v2pat & (1 << i) != 0).collect();
                let w = two_frame_values(&c, &v1, &v2, &[false, false, false]);
                let hits = detected_delay_faults(&c, &w, &faults, &[], &[]);
                // Without observable PPOs every hit must be at the PO.
                assert!(hits
                    .iter()
                    .all(|&(_, obs)| matches!(obs, DelayObservation::AtPo(_))));
                total_hits += hits.len();
            }
        }
        assert!(total_hits > 0, "some pair must robustly detect a fault");
    }
}
