//! Transition-fault simulation of the fast time frame — the phase-3
//! twin of [`crate::tdsim`] for the gross-delay (transition) model.
//!
//! A transition fault is detected when the launched transition arrives
//! at the fault site (`R` for slow-to-rise, `F` for slow-to-fall in the
//! fault-free waveform) and the *final-value* difference it leaves
//! behind — the site still holds its frame-1 value at capture — reaches
//! an observation point. That is the classic non-robust condition:
//! off-path inputs only need non-controlling final values; hazards may
//! invalidate the test on silicon but do not block detection here.
//!
//! The observation and invalidation frame is shared with the robust
//! simulator: a fault observed only at a PPO counts when (a) the
//! propagation phase proved that PPO observable and (b) the final-value
//! difference cannot corrupt any state bit the propagation relies on.
//!
//! [`detected_transition_faults_packed`] classifies 64 candidate faults
//! per sweep: one `u64` word per node, one fault per bit lane, plain
//! boolean gate evaluation over the union of the faults' output cones.
//! The scalar [`detected_transition_faults`] is the reference the packed
//! path is differential-tested against.

use crate::packed::SimScratch;
use crate::tdsim::DelayObservation;
use gdf_algebra::delay::DelayValue;
use gdf_netlist::{Circuit, DelayFaultKind, GateKind, NodeId, TransitionFault};

/// The provoking fault-free value at the site, or `None` when the test
/// does not launch the needed transition.
fn provoked(waveform: &[DelayValue], fault: TransitionFault) -> bool {
    let needed = match fault.kind {
        DelayFaultKind::SlowToRise => DelayValue::R,
        DelayFaultKind::SlowToFall => DelayValue::F,
    };
    waveform[fault.site.stem.index()] == needed
}

/// The direct branch-into-flip-flop case shared by the scalar and packed
/// paths: the faulty value latches straight into that PPO, so detection
/// is purely a question of phase-2 observability plus invalidation.
fn dff_branch_observation(
    waveform: &[DelayValue],
    fault: TransitionFault,
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
) -> Option<DelayObservation> {
    let ppo = fault.site.stem;
    if !observable_ppos.contains(&ppo) {
        return None;
    }
    for &req in required_state_ppos {
        if req != ppo && !waveform[req.index()].is_steady_clean() {
            return None;
        }
    }
    Some(DelayObservation::AtPpo(ppo))
}

/// Simulates all candidate transition `faults` against one two-pattern
/// test, with the same observation inputs as
/// [`crate::tdsim::detected_delay_faults`]:
///
/// * `waveform` — fault-free two-frame values from
///   [`crate::waveform::two_frame_values`];
/// * `observable_ppos` — PPO nets the propagation phase proved
///   observable;
/// * `required_state_ppos` — PPO nets whose steady values the
///   propagation phase relies on (the invalidation rule).
///
/// Returns `(fault index, observation)` pairs for every detected fault,
/// in fault-list order.
pub fn detected_transition_faults(
    circuit: &Circuit,
    waveform: &[DelayValue],
    faults: &[TransitionFault],
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
) -> Vec<(usize, DelayObservation)> {
    assert_eq!(waveform.len(), circuit.num_nodes(), "waveform length");
    let mut detected = Vec::new();
    let mut faulty: Vec<bool> = Vec::new();
    for (idx, &fault) in faults.iter().enumerate() {
        if !provoked(waveform, fault) {
            continue;
        }
        if let Some((sink, _)) = fault.site.branch {
            if !circuit.node(sink).kind().is_combinational() {
                if let Some(obs) =
                    dff_branch_observation(waveform, fault, observable_ppos, required_state_ppos)
                {
                    detected.push((idx, obs));
                }
                continue;
            }
        }

        // Faulty frame-2 values: start from the good final values, flip
        // the site, re-evaluate the fault's output cone.
        faulty.clear();
        faulty.extend(waveform.iter().map(|v| v.final_value()));
        let seed = match fault.site.branch {
            None => {
                faulty[fault.site.stem.index()] = !faulty[fault.site.stem.index()];
                fault.site.stem
            }
            Some((sink, _)) => sink,
        };
        let faulty_stem = !waveform[fault.site.stem.index()].final_value();
        let mut ins: Vec<bool> = Vec::with_capacity(8);
        for (gate, kind, fanins) in circuit.gates_levelized() {
            if !circuit.cone_contains(seed, gate) {
                continue;
            }
            if gate == fault.site.stem && fault.site.branch.is_none() {
                continue; // the slow site holds its stale value
            }
            ins.clear();
            ins.extend(fanins.iter().enumerate().map(|(pin, &f)| {
                if let Some((sink, fpin)) = fault.site.branch {
                    if f == fault.site.stem && sink == gate && fpin == pin as u8 {
                        return faulty_stem;
                    }
                }
                faulty[f.index()]
            }));
            faulty[gate.index()] = kind.eval_bool(&ins);
        }

        let differs = |n: NodeId| faulty[n.index()] != waveform[n.index()].final_value();
        if let Some(&po) = circuit.outputs().iter().find(|&&po| differs(po)) {
            detected.push((idx, DelayObservation::AtPo(po)));
            continue;
        }
        let Some(&ppo) = circuit
            .ppos()
            .iter()
            .find(|&&ppo| differs(ppo) && observable_ppos.contains(&ppo))
        else {
            continue;
        };
        let invalidated = required_state_ppos
            .iter()
            .any(|&req| req != ppo && (differs(req) || !waveform[req.index()].is_steady_clean()));
        if !invalidated {
            detected.push((idx, DelayObservation::AtPpo(ppo)));
        }
    }
    detected
}

/// Word-parallel variant of [`detected_transition_faults`]: classifies up
/// to 64 candidate faults per sweep, one fault per bit lane, with plain
/// boolean `u64` gate evaluation over the union of the faults' output
/// cones. Results are element-identical to the scalar function.
///
/// # Panics
///
/// Panics if `waveform` does not have one value per node.
pub fn detected_transition_faults_packed(
    circuit: &Circuit,
    waveform: &[DelayValue],
    faults: &[TransitionFault],
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
    scratch: &mut SimScratch,
) -> Vec<(usize, DelayObservation)> {
    assert_eq!(waveform.len(), circuit.num_nodes(), "waveform length");
    let mut detected = Vec::new();
    let placeholder = TransitionFault {
        site: gdf_netlist::FaultSite::on_stem(NodeId(0)),
        kind: DelayFaultKind::SlowToRise,
    };
    let mut batch: [(usize, TransitionFault); 64] = [(0, placeholder); 64];
    let mut filled = 0;
    for (idx, &fault) in faults.iter().enumerate() {
        if !provoked(waveform, fault) {
            continue;
        }
        if let Some((sink, _)) = fault.site.branch {
            if !circuit.node(sink).kind().is_combinational() {
                if let Some(obs) =
                    dff_branch_observation(waveform, fault, observable_ppos, required_state_ppos)
                {
                    detected.push((idx, obs));
                }
                continue;
            }
        }
        batch[filled] = (idx, fault);
        filled += 1;
        if filled == 64 {
            classify_batch(
                circuit,
                waveform,
                &batch[..filled],
                observable_ppos,
                required_state_ppos,
                scratch,
                &mut detected,
            );
            filled = 0;
        }
    }
    if filled > 0 {
        classify_batch(
            circuit,
            waveform,
            &batch[..filled],
            observable_ppos,
            required_state_ppos,
            scratch,
            &mut detected,
        );
    }
    detected.sort_unstable_by_key(|&(idx, _)| idx);
    detected
}

/// Boolean gate evaluation over 64 lanes at once.
fn eval_bool_packed(kind: GateKind, first: u64, rest: impl Iterator<Item = u64>) -> u64 {
    match kind {
        GateKind::Buf => first,
        GateKind::Not => !first,
        GateKind::And => rest.fold(first, |a, v| a & v),
        GateKind::Nand => !rest.fold(first, |a, v| a & v),
        GateKind::Or => rest.fold(first, |a, v| a | v),
        GateKind::Nor => !rest.fold(first, |a, v| a | v),
        GateKind::Xor => rest.fold(first, |a, v| a ^ v),
        GateKind::Xnor => !rest.fold(first, |a, v| a ^ v),
        GateKind::Input | GateKind::Dff => {
            panic!("eval_bool_packed called on non-combinational kind {kind:?}")
        }
    }
}

/// Classifies one ≤64-fault batch — every entry provoked, with a
/// combinational observation path — in one boolean sweep over the union
/// of the faults' output cones.
fn classify_batch(
    circuit: &Circuit,
    waveform: &[DelayValue],
    batch: &[(usize, TransitionFault)],
    observable_ppos: &[NodeId],
    required_state_ppos: &[NodeId],
    scratch: &mut SimScratch,
    detected: &mut Vec<(usize, DelayObservation)>,
) {
    let lanes_in_use = if batch.len() == 64 {
        !0u64
    } else {
        (1u64 << batch.len()) - 1
    };
    let broadcast = |v: bool| if v { !0u64 } else { 0u64 };

    // Per-lane faulty final values: start from the broadcast good final
    // values over the union cone only (nodes outside any cone are never
    // read with a stale value because lanes outside a node's own cone
    // equal the broadcast by construction).
    scratch.tf_vals.clear();
    scratch
        .tf_vals
        .extend(waveform.iter().map(|&v| broadcast(v.final_value())));
    scratch.stem_mask.resize(circuit.num_nodes(), 0);
    scratch.branch_flag.resize(circuit.num_nodes(), false);
    scratch.stem_nodes.clear();
    scratch.tf_branch_list.clear();
    scratch.cone_union.clear();
    scratch.cone_union.resize(circuit.cone_stride(), 0);

    for (k, &(_, fault)) in batch.iter().enumerate() {
        let seed = match fault.site.branch {
            None => {
                let stem = fault.site.stem.index();
                if scratch.stem_mask[stem] == 0 {
                    scratch.stem_nodes.push(fault.site.stem.0);
                }
                scratch.stem_mask[stem] |= 1 << k;
                fault.site.stem
            }
            Some((sink, pin)) => {
                if let Some(entry) = scratch
                    .tf_branch_list
                    .iter_mut()
                    .find(|e| e.0 == sink.0 && e.1 == pin)
                {
                    entry.2 |= 1 << k;
                } else {
                    scratch.tf_branch_list.push((sink.0, pin, 1 << k));
                    scratch.branch_flag[sink.index()] = true;
                }
                sink
            }
        };
        for (u, &w) in scratch.cone_union.iter_mut().zip(circuit.cone_words(seed)) {
            *u |= w;
        }
    }

    // Inject: flip the stem's final value in its fault lanes.
    for &node in &scratch.stem_nodes {
        let i = node as usize;
        scratch.tf_vals[i] ^= scratch.stem_mask[i];
    }

    for (gate, kind, fanins) in circuit.gates_levelized() {
        let gi = gate.index();
        if scratch.cone_union[gi / 64] >> (gi % 64) & 1 == 0 {
            continue;
        }
        let input = |pin: usize, f: NodeId| -> u64 {
            let mut v = scratch.tf_vals[f.index()];
            if scratch.branch_flag[gi] {
                for &(sink, fpin, mask) in &scratch.tf_branch_list {
                    if sink == gate.0 && fpin == pin as u8 {
                        // The branch carries the stale frame-1 value of
                        // its stem in the fault's lanes.
                        let stale = broadcast(!waveform[f.index()].final_value());
                        v = (v & !mask) | (stale & mask);
                    }
                }
            }
            v
        };
        let first = input(0, fanins[0]);
        let mut out = eval_bool_packed(
            kind,
            first,
            fanins[1..]
                .iter()
                .enumerate()
                .map(|(i, &f)| input(i + 1, f)),
        );
        let stem_lanes = scratch.stem_mask[gi];
        if stem_lanes != 0 {
            // The slow site holds its stale value in its own lanes.
            let good = broadcast(waveform[gi].final_value());
            out = (out & !stem_lanes) | (!good & stem_lanes);
        }
        scratch.tf_vals[gi] = out;
    }

    // Per-lane observation, mirroring the scalar order.
    let diff =
        |n: NodeId| scratch.tf_vals[n.index()] ^ broadcast(waveform[n.index()].final_value());
    let mut lanes = lanes_in_use;
    while lanes != 0 {
        let k = lanes.trailing_zeros() as usize;
        lanes &= lanes - 1;
        let bit = |n: NodeId| diff(n) >> k & 1 == 1;
        if let Some(&po) = circuit.outputs().iter().find(|&&po| bit(po)) {
            detected.push((batch[k].0, DelayObservation::AtPo(po)));
            continue;
        }
        let Some(&ppo) = circuit
            .ppos()
            .iter()
            .find(|&&ppo| bit(ppo) && observable_ppos.contains(&ppo))
        else {
            continue;
        };
        let invalidated = required_state_ppos
            .iter()
            .any(|&req| req != ppo && (bit(req) || !waveform[req.index()].is_steady_clean()));
        if !invalidated {
            detected.push((batch[k].0, DelayObservation::AtPpo(ppo)));
        }
    }

    // Reset the sparse injection tables for the next batch.
    for &node in &scratch.stem_nodes {
        scratch.stem_mask[node as usize] = 0;
    }
    for &(sink, ..) in &scratch.tf_branch_list {
        scratch.branch_flag[sink as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::two_frame_values;
    use gdf_netlist::{CircuitBuilder, FaultSite, FaultUniverse};

    fn fault(site: FaultSite, kind: DelayFaultKind) -> TransitionFault {
        TransitionFault { site, kind }
    }

    #[test]
    fn transition_detection_is_nonrobust() {
        // y = AND(a, b): a falls while b rises. The robust simulator
        // rejects this test (off-path input not steady); the transition
        // model accepts it: the final values alone expose the slow fall.
        let mut bld = CircuitBuilder::new("nonrobust");
        bld.add_input("a");
        bld.add_input("b");
        bld.add_gate("y", GateKind::And, &["a", "b"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let a = c.node_by_name("a").unwrap();
        let tf = fault(FaultSite::on_stem(a), DelayFaultKind::SlowToFall);
        let w = two_frame_values(&c, &[true, false], &[false, true], &[]);
        let robust_twin = gdf_netlist::DelayFault {
            site: tf.site,
            kind: tf.kind,
        };
        assert!(
            crate::tdsim::detected_delay_faults(&c, &w, &[robust_twin], &[], &[]).is_empty(),
            "robust model must reject the glitchy side input"
        );
        assert_eq!(
            detected_transition_faults(&c, &w, &[tf], &[], &[]).len(),
            1,
            "transition model needs only the final-value difference"
        );
    }

    #[test]
    fn unprovoked_faults_are_screened() {
        let mut bld = CircuitBuilder::new("screen");
        bld.add_input("a");
        bld.add_gate("y", GateKind::Buf, &["a"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let a = c.node_by_name("a").unwrap();
        let w = two_frame_values(&c, &[false], &[true], &[]);
        // a rises: only the slow-to-rise fault is provoked.
        let faults = [
            fault(FaultSite::on_stem(a), DelayFaultKind::SlowToRise),
            fault(FaultSite::on_stem(a), DelayFaultKind::SlowToFall),
        ];
        let hits = detected_transition_faults(&c, &w, &faults, &[], &[]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
    }

    #[test]
    fn packed_matches_scalar_exhaustively_on_s27() {
        let c = gdf_netlist::suite::s27();
        let faults = FaultUniverse::default().transition_faults(&c);
        let all_ppos = c.ppos().to_vec();
        let mut scratch = SimScratch::default();
        for seed in 0u32..64 {
            let v1: Vec<bool> = (0..4).map(|i| seed & (1 << i) != 0).collect();
            let v2: Vec<bool> = (0..4).map(|i| seed & (32 >> i) != 0).collect();
            let st: Vec<bool> = (0..3).map(|i| seed & (1 << (i + 1)) != 0).collect();
            let w = two_frame_values(&c, &v1, &v2, &st);
            let cases: [(&[NodeId], &[NodeId]); 3] = [
                (&[], &[]),
                (&all_ppos, &[]),
                (&all_ppos[..1], &all_ppos[1..]),
            ];
            for (obs, req) in cases {
                let scalar = detected_transition_faults(&c, &w, &faults, obs, req);
                let packed =
                    detected_transition_faults_packed(&c, &w, &faults, obs, req, &mut scratch);
                assert_eq!(scalar, packed, "seed {seed} obs {obs:?} req {req:?}");
            }
        }
    }

    #[test]
    fn transition_detects_superset_of_robust_on_s27() {
        // Every robustly detected delay fault's transition twin is also
        // detected (non-robust is strictly weaker), for every pattern
        // pair of the sweep.
        let c = gdf_netlist::suite::s27();
        let delay = FaultUniverse::default().delay_faults(&c);
        let transition = FaultUniverse::default().transition_faults(&c);
        for seed in 0u32..64 {
            let v1: Vec<bool> = (0..4).map(|i| seed & (1 << i) != 0).collect();
            let v2: Vec<bool> = (0..4).map(|i| seed & (32 >> i) != 0).collect();
            let w = two_frame_values(&c, &v1, &v2, &[false, true, false]);
            let robust: Vec<usize> = crate::tdsim::detected_delay_faults(&c, &w, &delay, &[], &[])
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let tf: Vec<usize> = detected_transition_faults(&c, &w, &transition, &[], &[])
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            for k in &robust {
                assert!(tf.contains(k), "seed {seed}: robust hit {k} lost");
            }
        }
    }

    #[test]
    fn branch_and_dff_branch_faults() {
        let mut bld = CircuitBuilder::new("mix");
        bld.add_input("a");
        bld.add_dff("q", "d");
        bld.add_gate("s", GateKind::Not, &["a"]);
        bld.add_gate("d", GateKind::Buf, &["s"]);
        bld.add_gate("y", GateKind::Buf, &["s"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let faults = FaultUniverse::default().transition_faults(&c);
        let d = c.node_by_name("d").unwrap();
        let mut scratch = SimScratch::default();
        for (v1, v2) in [(false, true), (true, false)] {
            for st in [false, true] {
                let w = two_frame_values(&c, &[v1], &[v2], &[st]);
                for obs in [&[][..], &[d][..]] {
                    let scalar = detected_transition_faults(&c, &w, &faults, obs, &[]);
                    let packed =
                        detected_transition_faults_packed(&c, &w, &faults, obs, &[], &mut scratch);
                    assert_eq!(scalar, packed, "{v1}{v2} state {st} obs {obs:?}");
                }
            }
        }
    }
}
