//! Two-frame waveform evaluation over the (clean) delay algebra.
//!
//! Given the two vectors `(V1, V2)` of a two-pattern test and the circuit
//! state in the initial frame, every net gets one [`DelayValue`] out of the
//! six *clean* values `{0, 1, R, F, 0h, 1h}` describing its behaviour
//! across the frame pair. Endpoint (frame-1/frame-2) values match plain
//! binary simulation by construction; the hazard marks come from the
//! algebra itself. This is the fault-free waveform TDsim traces.

use gdf_algebra::delay::{eval_gate, DelayValue};
use gdf_netlist::Circuit;

/// Computes the clean two-frame value of every net.
///
/// * `v1`, `v2` — the PI vectors of the initial and test frame;
/// * `state1` — the flip-flop state in the initial frame (fully specified:
///   X-fill must happen before calling, as in FAUSIM phase 1).
///
/// The flip-flop outputs take `state1[i]` in frame 1 and, in frame 2, the
/// value their PPO computes in frame 1 (the state register correlation of
/// the paper).
///
/// # Panics
///
/// Panics if the vector lengths do not match the circuit.
///
/// # Example
///
/// ```
/// use gdf_netlist::suite;
/// use gdf_sim::two_frame_values;
///
/// let c = suite::s27();
/// let w = two_frame_values(
///     &c,
///     &[false, false, false, false],
///     &[true, false, false, false],
///     &[false, false, false],
/// );
/// let g14 = c.node_by_name("G14").unwrap();
/// // G14 = NOT(G0): input rises 0→1, so G14 falls.
/// assert_eq!(w[g14.index()], gdf_algebra::DelayValue::F);
/// ```
pub fn two_frame_values(
    circuit: &Circuit,
    v1: &[bool],
    v2: &[bool],
    state1: &[bool],
) -> Vec<DelayValue> {
    let mut f1 = Vec::new();
    let mut w = Vec::new();
    two_frame_values_into(circuit, v1, v2, state1, &mut f1, &mut w);
    w
}

/// Allocation-free variant of [`two_frame_values`]: `f1` is the reusable
/// frame-1 scratch, `w` receives the waveform (one value per node).
///
/// # Panics
///
/// Panics if the vector lengths do not match the circuit.
pub fn two_frame_values_into(
    circuit: &Circuit,
    v1: &[bool],
    v2: &[bool],
    state1: &[bool],
    f1: &mut Vec<bool>,
    w: &mut Vec<DelayValue>,
) {
    assert_eq!(v1.len(), circuit.num_inputs(), "V1 length");
    assert_eq!(v2.len(), circuit.num_inputs(), "V2 length");
    assert_eq!(state1.len(), circuit.num_dffs(), "state length");

    // Pass 1: frame-1 binary values, to latch the frame-2 state.
    f1.clear();
    f1.resize(circuit.num_nodes(), false);
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        f1[pi.index()] = v1[i];
    }
    for (i, &ff) in circuit.dffs().iter().enumerate() {
        f1[ff.index()] = state1[i];
    }
    let mut ins_bool: Vec<bool> = Vec::with_capacity(8);
    for (gate, kind, fanins) in circuit.gates_levelized() {
        ins_bool.clear();
        ins_bool.extend(fanins.iter().map(|f| f1[f.index()]));
        f1[gate.index()] = kind.eval_bool(&ins_bool);
    }

    // Pass 2: delay-algebra evaluation with clean leaf values.
    w.clear();
    w.resize(circuit.num_nodes(), DelayValue::S0);
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        w[pi.index()] = DelayValue::from_frames(v1[i], v2[i]);
    }
    for (i, &ff) in circuit.dffs().iter().enumerate() {
        let latched = f1[circuit.ppo_of_dff(ff).index()];
        w[ff.index()] = DelayValue::from_frames(state1[i], latched);
    }
    let mut ins: Vec<DelayValue> = Vec::with_capacity(8);
    for (gate, kind, fanins) in circuit.gates_levelized() {
        ins.clear();
        ins.extend(fanins.iter().map(|f| w[f.index()]));
        w[gate.index()] = eval_gate(kind, &ins);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{suite, CircuitBuilder, GateKind};

    #[test]
    fn endpoints_match_binary_simulation() {
        let c = suite::s27();
        // Exhaustive over a sample of vector pairs and states.
        for seed in 0u32..64 {
            let v1: Vec<bool> = (0..4).map(|i| seed & (1 << i) != 0).collect();
            let v2: Vec<bool> = (0..4).map(|i| seed & (8 >> i) != 0).collect();
            let st: Vec<bool> = (0..3).map(|i| seed & (1 << (i + 2)) != 0).collect();
            let w = two_frame_values(&c, &v1, &v2, &st);

            // Frame-1 endpoint check.
            let mut f1 = vec![false; c.num_nodes()];
            for (i, &pi) in c.inputs().iter().enumerate() {
                f1[pi.index()] = v1[i];
            }
            for (i, &ff) in c.dffs().iter().enumerate() {
                f1[ff.index()] = st[i];
            }
            for &g in c.topo_order() {
                let node = c.node(g);
                let ins: Vec<bool> = node.fanin().iter().map(|&f| f1[f.index()]).collect();
                f1[g.index()] = node.kind().eval_bool(&ins);
            }
            // Frame-2 endpoint check with latched state.
            let st2: Vec<bool> = c
                .dffs()
                .iter()
                .map(|&ff| f1[c.ppo_of_dff(ff).index()])
                .collect();
            let mut f2 = vec![false; c.num_nodes()];
            for (i, &pi) in c.inputs().iter().enumerate() {
                f2[pi.index()] = v2[i];
            }
            for (i, &ff) in c.dffs().iter().enumerate() {
                f2[ff.index()] = st2[i];
            }
            for &g in c.topo_order() {
                let node = c.node(g);
                let ins: Vec<bool> = node.fanin().iter().map(|&f| f2[f.index()]).collect();
                f2[g.index()] = node.kind().eval_bool(&ins);
            }
            for idx in 0..c.num_nodes() {
                assert_eq!(w[idx].initial(), f1[idx], "node {idx} frame 1 seed {seed}");
                assert_eq!(
                    w[idx].final_value(),
                    f2[idx],
                    "node {idx} frame 2 seed {seed}"
                );
            }
        }
    }

    #[test]
    fn hazard_detected_on_reconvergence() {
        // y = AND(a, NOT(a)): statically 0, but an input transition makes
        // the output hazardous.
        let mut b = CircuitBuilder::new("haz");
        b.add_input("a");
        b.add_gate("n", GateKind::Not, &["a"]);
        b.add_gate("y", GateKind::And, &["a", "n"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let y = c.node_by_name("y").unwrap();

        let steady = two_frame_values(&c, &[false], &[false], &[]);
        assert_eq!(
            steady[y.index()],
            DelayValue::S0,
            "no transition, no hazard"
        );

        let rising = two_frame_values(&c, &[false], &[true], &[]);
        assert_eq!(rising[y.index()], DelayValue::H0, "R∧F gives a 0-hazard");
    }

    #[test]
    fn dff_correlation() {
        // q's frame-2 value is d's frame-1 value.
        let mut b = CircuitBuilder::new("corr");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::Not, &["q"]);
        b.add_gate("y", GateKind::Xor, &["a", "q"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let q = c.node_by_name("q").unwrap();
        // state1 = [0]: d = NOT(0) = 1 in frame 1, so q rises.
        let w = two_frame_values(&c, &[false], &[false], &[false]);
        assert_eq!(w[q.index()], DelayValue::R);
        // state1 = [1]: d = 0 in frame 1, so q falls.
        let w = two_frame_values(&c, &[false], &[false], &[true]);
        assert_eq!(w[q.index()], DelayValue::F);
    }

    #[test]
    fn no_fault_marks_in_clean_waveform() {
        let c = suite::s27();
        let w = two_frame_values(
            &c,
            &[true, false, true, false],
            &[false, true, false, true],
            &[true, false, true],
        );
        assert!(w.iter().all(|v| !v.carries_fault()));
    }
}
