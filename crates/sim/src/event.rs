//! Event-driven incremental logic simulation.
//!
//! [`GoodSimulator`](crate::goodsim::GoodSimulator) re-evaluates the whole
//! combinational block every frame. For workloads that change few inputs
//! between evaluations — serial fault simulation, sequence re-simulation
//! during compaction, interactive what-if analysis — an event-driven
//! simulator only touches the cone of the changed nets. [`EventSimulator`]
//! keeps the full node-value state resident and propagates *events*
//! (value changes) in level order, which is the classic selective-trace
//! technique the 1990s fault simulators (including FAUSIM) were built on.

use gdf_algebra::logic3::{eval_gate3, Logic3};
use gdf_netlist::{Circuit, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Incremental 3-valued simulator with selective trace.
///
/// # Example
///
/// ```
/// use gdf_algebra::Logic3;
/// use gdf_netlist::suite;
/// use gdf_sim::event::EventSimulator;
///
/// let c = suite::s27();
/// let mut sim = EventSimulator::new(&c);
/// sim.set_inputs(&[Logic3::Zero; 4]);
/// sim.set_state(&[Logic3::Zero; 3]);
/// sim.settle();
/// let g17 = c.node_by_name("G17").unwrap();
/// assert_eq!(sim.value(g17), Logic3::One);
///
/// // Flip one input: only its cone re-evaluates.
/// sim.set_input(0, Logic3::One);
/// let touched = sim.settle();
/// assert!(touched < c.num_gates());
/// ```
#[derive(Debug, Clone)]
pub struct EventSimulator<'c> {
    circuit: &'c Circuit,
    values: Vec<Logic3>,
    /// Gates awaiting re-evaluation, ordered by level (a gate is evaluated
    /// at most once per settle pass).
    queue: BinaryHeap<Reverse<(u32, u32)>>,
    queued: Vec<bool>,
}

impl<'c> EventSimulator<'c> {
    /// Creates a simulator with every net at `X`.
    pub fn new(circuit: &'c Circuit) -> Self {
        EventSimulator {
            circuit,
            values: vec![Logic3::X; circuit.num_nodes()],
            queue: BinaryHeap::new(),
            queued: vec![false; circuit.num_nodes()],
        }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Current value of a net (valid after [`EventSimulator::settle`]).
    pub fn value(&self, id: NodeId) -> Logic3 {
        self.values[id.index()]
    }

    /// Sets one primary input, scheduling its fanout if the value changed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_input(&mut self, index: usize, v: Logic3) {
        let id = self.circuit.inputs()[index];
        self.drive_source(id, v);
    }

    /// Sets all primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len()` differs from the input count.
    pub fn set_inputs(&mut self, pi: &[Logic3]) {
        assert_eq!(pi.len(), self.circuit.num_inputs(), "PI vector length");
        for (i, &v) in pi.iter().enumerate() {
            self.set_input(i, v);
        }
    }

    /// Sets one state bit (flip-flop output).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_state_bit(&mut self, index: usize, v: Logic3) {
        let id = self.circuit.dffs()[index];
        self.drive_source(id, v);
    }

    /// Sets the whole state vector.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_state(&mut self, state: &[Logic3]) {
        assert_eq!(state.len(), self.circuit.num_dffs(), "state vector length");
        for (i, &v) in state.iter().enumerate() {
            self.set_state_bit(i, v);
        }
    }

    fn drive_source(&mut self, id: NodeId, v: Logic3) {
        if self.values[id.index()] == v {
            return;
        }
        self.values[id.index()] = v;
        self.schedule_fanout(id);
    }

    fn schedule_fanout(&mut self, id: NodeId) {
        let sinks: Vec<NodeId> = self
            .circuit
            .node(id)
            .fanout()
            .iter()
            .map(|&(s, _)| s)
            .filter(|&s| self.circuit.node(s).kind().is_combinational())
            .collect();
        for sink in sinks {
            if !self.queued[sink.index()] {
                self.queued[sink.index()] = true;
                self.queue.push(Reverse((self.circuit.level(sink), sink.0)));
            }
        }
    }

    /// Propagates all pending events to a fixpoint; returns the number of
    /// gate evaluations performed (the "activity" of this settle pass).
    pub fn settle(&mut self) -> usize {
        let mut evaluated = 0;
        while let Some(Reverse((_, raw))) = self.queue.pop() {
            let id = NodeId(raw);
            self.queued[id.index()] = false;
            let node = self.circuit.node(id);
            let ins: Vec<Logic3> = node
                .fanin()
                .iter()
                .map(|&f| self.values[f.index()])
                .collect();
            let new = eval_gate3(node.kind(), &ins);
            evaluated += 1;
            if new != self.values[id.index()] {
                self.values[id.index()] = new;
                self.schedule_fanout(id);
            }
        }
        evaluated
    }

    /// Latches the next state from the settled values and schedules the
    /// state change — one sequential clock tick. Returns the new state.
    pub fn tick(&mut self) -> Vec<Logic3> {
        let next: Vec<Logic3> = self
            .circuit
            .dffs()
            .iter()
            .map(|&ff| self.values[self.circuit.ppo_of_dff(ff).index()])
            .collect();
        for (i, &v) in next.clone().iter().enumerate() {
            self.set_state_bit(i, v);
        }
        next
    }

    /// Full snapshot of all node values.
    pub fn values(&self) -> &[Logic3] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goodsim::GoodSimulator;
    use gdf_netlist::suite;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand3(rng: &mut StdRng) -> Logic3 {
        match rng.gen_range(0..3) {
            0 => Logic3::Zero,
            1 => Logic3::One,
            _ => Logic3::X,
        }
    }

    #[test]
    fn agrees_with_full_evaluation_on_random_stimuli() {
        let c = suite::table3_circuit("s298").expect("suite circuit");
        let full = GoodSimulator::new(&c);
        let mut ev = EventSimulator::new(&c);
        let mut rng = StdRng::seed_from_u64(11);
        let mut pi: Vec<Logic3> = (0..c.num_inputs()).map(|_| rand3(&mut rng)).collect();
        let mut st: Vec<Logic3> = (0..c.num_dffs()).map(|_| rand3(&mut rng)).collect();
        ev.set_inputs(&pi);
        ev.set_state(&st);
        ev.settle();
        for round in 0..50 {
            // Flip a random input or state bit.
            if rng.gen_bool(0.5) && !pi.is_empty() {
                let i = rng.gen_range(0..pi.len());
                pi[i] = rand3(&mut rng);
                ev.set_input(i, pi[i]);
            } else {
                let i = rng.gen_range(0..st.len());
                st[i] = rand3(&mut rng);
                ev.set_state_bit(i, st[i]);
            }
            ev.settle();
            let reference = full.eval_comb(&pi, &st);
            for (idx, &expect) in reference.iter().enumerate() {
                assert_eq!(
                    ev.values()[idx],
                    expect,
                    "node {idx} differs in round {round}"
                );
            }
        }
    }

    #[test]
    fn single_bit_change_touches_only_the_cone() {
        let c = suite::table3_circuit("s344").expect("suite circuit");
        let mut ev = EventSimulator::new(&c);
        ev.set_inputs(&vec![Logic3::Zero; c.num_inputs()]);
        ev.set_state(&vec![Logic3::Zero; c.num_dffs()]);
        ev.settle();
        // Change one PI; activity must be bounded by its cone size.
        let pi0 = c.inputs()[1];
        let cone = c.output_cone(pi0);
        let cone_size = cone.iter().filter(|&&b| b).count();
        ev.set_input(1, Logic3::One);
        let evaluated = ev.settle();
        assert!(
            evaluated <= cone_size,
            "activity {evaluated} exceeds cone {cone_size}"
        );
        assert!(evaluated < c.num_gates(), "must not re-evaluate everything");
    }

    #[test]
    fn tick_matches_goodsim_sequence() {
        let c = suite::s27();
        let full = GoodSimulator::new(&c);
        let mut ev = EventSimulator::new(&c);
        let vectors: Vec<Vec<Logic3>> = vec![
            vec![Logic3::One, Logic3::Zero, Logic3::One, Logic3::Zero],
            vec![Logic3::Zero; 4],
            vec![Logic3::One; 4],
        ];
        // Event-driven run.
        ev.set_state(&full.initial_state());
        let mut ev_states = Vec::new();
        for v in &vectors {
            ev.set_inputs(v);
            ev.settle();
            ev_states.push(ev.tick());
            ev.settle();
        }
        // Reference run.
        let (_frames, _final) = full.run(&full.initial_state(), &vectors);
        let mut st = full.initial_state();
        for (v, evst) in vectors.iter().zip(&ev_states) {
            let vals = full.eval_comb(v, &st);
            st = full.next_state(&vals);
            assert_eq!(&st, evst);
        }
    }

    #[test]
    fn redundant_set_is_free() {
        let c = suite::s27();
        let mut ev = EventSimulator::new(&c);
        ev.set_inputs(&[Logic3::Zero; 4]);
        ev.set_state(&[Logic3::Zero; 3]);
        ev.settle();
        // Re-applying identical values schedules nothing.
        ev.set_inputs(&[Logic3::Zero; 4]);
        assert_eq!(ev.settle(), 0);
    }
}
