//! Bit-parallel 3-valued simulation: 64 independent Kleene values per
//! machine word, two bit-planes per net.
//!
//! [`PackedLogic`] uses the classic two-rail encoding — a `ones` plane for
//! lanes known to be 1 and a `zeros` plane for lanes known to be 0; a lane
//! set in neither plane is `X`. Gate evaluation is a handful of word ops
//! and is lane-identical to [`gdf_algebra::logic3::eval_gate3`] (the Kleene
//! operations are associative, so the pairwise fold enumerates exactly the
//! n-ary results; proven by the exhaustive tests below).
//!
//! [`PackedGoodSim`] sweeps the combinational block once for 64 packed
//! 3-valued patterns — the engine behind the 64-lane FAUSIM variant that
//! propagates one PPO state difference per lane.
//!
//! [`SimScratch`] bundles the reusable node-value buffers of every packed
//! sweep so per-sequence hot loops allocate nothing after warm-up.

use gdf_algebra::delay::DelayValue;
use gdf_algebra::logic3::Logic3;
use gdf_algebra::packed::PackedWave;
use gdf_netlist::{Circuit, GateKind};

/// 64 Kleene logic values, one per bit lane, in two-rail encoding.
///
/// Invariant: `ones & zeros == 0` (a lane cannot be both known-1 and
/// known-0). All constructors and operations maintain it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedLogic {
    /// Lanes known to be logic 1.
    pub ones: u64,
    /// Lanes known to be logic 0.
    pub zeros: u64,
}

impl PackedLogic {
    /// All 64 lanes unknown.
    pub const ALL_X: PackedLogic = PackedLogic { ones: 0, zeros: 0 };

    /// All 64 lanes holding the same value.
    pub fn splat(v: Logic3) -> PackedLogic {
        match v {
            Logic3::One => PackedLogic { ones: !0, zeros: 0 },
            Logic3::Zero => PackedLogic { ones: 0, zeros: !0 },
            Logic3::X => PackedLogic::ALL_X,
        }
    }

    /// The value in lane `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 64`.
    pub fn lane(self, k: usize) -> Logic3 {
        assert!(k < 64);
        if self.ones >> k & 1 == 1 {
            Logic3::One
        } else if self.zeros >> k & 1 == 1 {
            Logic3::Zero
        } else {
            Logic3::X
        }
    }

    /// Overwrites lane `k` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 64`.
    pub fn set_lane(&mut self, k: usize, v: Logic3) {
        assert!(k < 64);
        let mask = 1u64 << k;
        self.ones &= !mask;
        self.zeros &= !mask;
        match v {
            Logic3::One => self.ones |= mask,
            Logic3::Zero => self.zeros |= mask,
            Logic3::X => {}
        }
    }

    /// Lanes with a known (non-`X`) value.
    pub fn known(self) -> u64 {
        self.ones | self.zeros
    }

    /// Kleene negation on all lanes.
    #[allow(clippy::should_implement_trait)] // mirror Logic3::not's name
    pub fn not(self) -> PackedLogic {
        PackedLogic {
            ones: self.zeros,
            zeros: self.ones,
        }
    }

    /// Kleene conjunction on all lanes.
    pub fn and(self, other: PackedLogic) -> PackedLogic {
        PackedLogic {
            ones: self.ones & other.ones,
            zeros: self.zeros | other.zeros,
        }
    }

    /// Kleene disjunction on all lanes.
    pub fn or(self, other: PackedLogic) -> PackedLogic {
        PackedLogic {
            ones: self.ones | other.ones,
            zeros: self.zeros & other.zeros,
        }
    }

    /// Kleene exclusive-or on all lanes.
    pub fn xor(self, other: PackedLogic) -> PackedLogic {
        let known = self.known() & other.known();
        let v = self.ones ^ other.ones;
        PackedLogic {
            ones: known & v,
            zeros: known & !v,
        }
    }
}

/// Evaluates a combinational gate over packed 3-valued inputs, lane-wise
/// identical to [`gdf_algebra::logic3::eval_gate3`].
///
/// # Panics
///
/// Panics if `kind` is `Input`/`Dff` or `ins` is empty.
pub fn eval_gate_packed3(kind: GateKind, ins: &[PackedLogic]) -> PackedLogic {
    debug_assert!(!ins.is_empty());
    match kind {
        GateKind::Buf => ins[0],
        GateKind::Not => ins[0].not(),
        GateKind::And => ins[1..].iter().fold(ins[0], |a, &b| a.and(b)),
        GateKind::Nand => ins[1..].iter().fold(ins[0], |a, &b| a.and(b)).not(),
        GateKind::Or => ins[1..].iter().fold(ins[0], |a, &b| a.or(b)),
        GateKind::Nor => ins[1..].iter().fold(ins[0], |a, &b| a.or(b)).not(),
        GateKind::Xor => ins[1..].iter().fold(ins[0], |a, &b| a.xor(b)),
        GateKind::Xnor => ins[1..].iter().fold(ins[0], |a, &b| a.xor(b)).not(),
        GateKind::Input | GateKind::Dff => {
            panic!("eval_gate_packed3 called on non-combinational kind {kind:?}")
        }
    }
}

/// Evaluates one gate over packed node values addressed through its fanin
/// list — the fold-direct twin of [`eval_gate_packed3`] (same fold order,
/// so identical results), without gathering an input slice. Mirrors
/// `eval3_indexed` (scalar 3-valued) and `eval_packed_indexed` (packed
/// waveform) at the other two sweep sites.
fn eval_packed3_indexed(
    kind: GateKind,
    fanins: &[gdf_netlist::NodeId],
    values: &[PackedLogic],
) -> PackedLogic {
    let v = |f: &gdf_netlist::NodeId| values[f.index()];
    let first = v(&fanins[0]);
    match kind {
        GateKind::Buf => first,
        GateKind::Not => first.not(),
        GateKind::And => fanins[1..].iter().fold(first, |a, f| a.and(v(f))),
        GateKind::Nand => fanins[1..].iter().fold(first, |a, f| a.and(v(f))).not(),
        GateKind::Or => fanins[1..].iter().fold(first, |a, f| a.or(v(f))),
        GateKind::Nor => fanins[1..].iter().fold(first, |a, f| a.or(v(f))).not(),
        GateKind::Xor => fanins[1..].iter().fold(first, |a, f| a.xor(v(f))),
        GateKind::Xnor => fanins[1..].iter().fold(first, |a, f| a.xor(v(f))).not(),
        GateKind::Input | GateKind::Dff => unreachable!("sources are not levelized"),
    }
}

/// Reusable buffers for the packed sweeps: create once per worker, hand to
/// every packed call. Nothing is allocated in the hot loops after the
/// first call sized them.
#[derive(Debug, Default, Clone)]
pub struct SimScratch {
    /// Scalar 3-valued node values (good machine).
    pub logic: Vec<Logic3>,
    /// Packed 3-valued node values (64 faulty machines).
    pub packed: Vec<PackedLogic>,
    /// Packed current state, one entry per flip-flop.
    pub packed_state: Vec<PackedLogic>,
    /// Packed next state, one entry per flip-flop.
    pub packed_next: Vec<PackedLogic>,
    /// One broadcast PI frame for the packed sweeps.
    pub packed_ins: Vec<PackedLogic>,
    /// Packed waveform node values (64 marked machines).
    pub packed_wave: Vec<PackedWave>,
    /// Per-gate input gather for packed waveform evaluation.
    pub wave_ins: Vec<PackedWave>,
    /// Union-of-cones bitset for one fault batch.
    pub cone_union: Vec<u64>,
    /// Scalar good-machine state (phase-1/2 stepping).
    pub state: Vec<Logic3>,
    /// Scalar good-machine next state (swapped with `state` per frame).
    pub state_next: Vec<Logic3>,
    /// Per-batch stem-fault lane masks, indexed by node (sparse — reset
    /// via `stem_nodes`).
    pub stem_mask: Vec<u64>,
    /// Marked value injected at each stem of `stem_nodes`.
    pub stem_val: Vec<DelayValue>,
    /// Nodes with a non-zero `stem_mask` this batch.
    pub stem_nodes: Vec<u32>,
    /// Per-batch branch-fault overrides: (sink node index, pin, lane
    /// mask, marked value).
    pub branch_list: Vec<(u32, u8, u64, DelayValue)>,
    /// Whether a node has any branch override this batch (sparse — reset
    /// via `branch_list`).
    pub branch_flag: Vec<bool>,
    /// Per-node faulty final values for the transition-fault sweep
    /// ([`crate::tfsim`]), one fault per bit lane.
    pub tf_vals: Vec<u64>,
    /// Per-batch transition branch-fault overrides: (sink node index,
    /// pin, lane mask).
    pub tf_branch_list: Vec<(u32, u8, u64)>,
}

/// 64-way parallel 3-valued simulator: one independent Kleene pattern per
/// bit lane.
///
/// # Example
///
/// ```
/// use gdf_algebra::Logic3;
/// use gdf_netlist::suite;
/// use gdf_sim::{PackedGoodSim, PackedLogic};
///
/// let c = suite::s27();
/// let sim = PackedGoodSim::new(&c);
/// let pi = vec![PackedLogic::splat(Logic3::Zero); 4];
/// let st = vec![PackedLogic::ALL_X; 3];
/// let mut values = Vec::new();
/// sim.eval_comb_into(&pi, &st, &mut values);
/// assert_eq!(values.len(), c.num_nodes());
/// ```
#[derive(Debug, Clone)]
pub struct PackedGoodSim<'c> {
    circuit: &'c Circuit,
}

impl<'c> PackedGoodSim<'c> {
    /// Creates a packed simulator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        PackedGoodSim { circuit }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Evaluates the combinational block for one time frame of 64 packed
    /// 3-valued patterns, writing one value per node into `values`.
    ///
    /// # Panics
    ///
    /// Panics if `pi` or `state` have the wrong length.
    pub fn eval_comb_into(
        &self,
        pi: &[PackedLogic],
        state: &[PackedLogic],
        values: &mut Vec<PackedLogic>,
    ) {
        let circuit = self.circuit;
        assert_eq!(pi.len(), circuit.num_inputs(), "PI vector length");
        assert_eq!(state.len(), circuit.num_dffs(), "state vector length");
        values.clear();
        values.resize(circuit.num_nodes(), PackedLogic::ALL_X);
        for (i, &id) in circuit.inputs().iter().enumerate() {
            values[id.index()] = pi[i];
        }
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            values[ff.index()] = state[i];
        }
        for (gate, kind, fanins) in circuit.gates_levelized() {
            values[gate.index()] = eval_packed3_indexed(kind, fanins, values);
        }
    }

    /// Latches the next state from a node-value map into `next`.
    pub fn next_state_into(&self, values: &[PackedLogic], next: &mut Vec<PackedLogic>) {
        next.clear();
        next.extend(
            self.circuit
                .dffs()
                .iter()
                .map(|&ff| values[self.circuit.ppo_of_dff(ff).index()]),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_algebra::logic3::eval_gate3;
    use gdf_netlist::suite;
    use Logic3::{One, Zero, X};

    #[test]
    fn splat_lane_round_trip() {
        for v in Logic3::ALL {
            let p = PackedLogic::splat(v);
            assert_eq!(p.lane(0), v);
            assert_eq!(p.lane(63), v);
            assert_eq!(p.ones & p.zeros, 0);
        }
    }

    #[test]
    fn set_lane_is_local() {
        let mut p = PackedLogic::splat(One);
        p.set_lane(7, X);
        p.set_lane(8, Zero);
        assert_eq!(p.lane(6), One);
        assert_eq!(p.lane(7), X);
        assert_eq!(p.lane(8), Zero);
        assert_eq!(p.ones & p.zeros, 0);
    }

    #[test]
    fn ops_match_scalar_kleene_exhaustively() {
        // All 9 value pairs in the first 9 lanes.
        let pairs: Vec<(Logic3, Logic3)> = Logic3::ALL
            .into_iter()
            .flat_map(|a| Logic3::ALL.into_iter().map(move |b| (a, b)))
            .collect();
        let mut a = PackedLogic::ALL_X;
        let mut b = PackedLogic::ALL_X;
        for (k, &(va, vb)) in pairs.iter().enumerate() {
            a.set_lane(k, va);
            b.set_lane(k, vb);
        }
        for (k, &(va, vb)) in pairs.iter().enumerate() {
            assert_eq!(a.and(b).lane(k), va.and(vb), "and({va}, {vb})");
            assert_eq!(a.or(b).lane(k), va.or(vb), "or({va}, {vb})");
            assert_eq!(a.xor(b).lane(k), va.xor(vb), "xor({va}, {vb})");
            assert_eq!(a.not().lane(k), va.not(), "not({va})");
        }
    }

    #[test]
    fn gate_eval_matches_scalar_three_inputs() {
        // Exhaustive 27 triples per kind, packed one per lane.
        let triples: Vec<[Logic3; 3]> = Logic3::ALL
            .into_iter()
            .flat_map(|a| {
                Logic3::ALL
                    .into_iter()
                    .flat_map(move |b| Logic3::ALL.into_iter().map(move |c| [a, b, c]))
            })
            .collect();
        let mut ins = [PackedLogic::ALL_X; 3];
        for (k, t) in triples.iter().enumerate() {
            for (j, &v) in t.iter().enumerate() {
                ins[j].set_lane(k, v);
            }
        }
        for kind in GateKind::COMBINATIONAL {
            if matches!(kind, GateKind::Buf | GateKind::Not) {
                continue;
            }
            let packed = eval_gate_packed3(kind, &ins);
            for (k, t) in triples.iter().enumerate() {
                assert_eq!(packed.lane(k), eval_gate3(kind, t), "{kind:?} {t:?}");
            }
        }
    }

    #[test]
    fn packed_goodsim_matches_scalar_on_s27() {
        let c = suite::s27();
        let scalar = crate::GoodSimulator::new(&c);
        let packed = PackedGoodSim::new(&c);
        // 3^4 PI patterns don't fit nicely; sample 64 mixed PI/state lanes.
        let mut pi = vec![PackedLogic::ALL_X; 4];
        let mut st = vec![PackedLogic::ALL_X; 3];
        let val = |n: usize| Logic3::ALL[n % 3];
        for k in 0..64usize {
            for (i, p) in pi.iter_mut().enumerate() {
                p.set_lane(k, val(k / 3usize.pow(i as u32)));
            }
            for (i, s) in st.iter_mut().enumerate() {
                s.set_lane(k, val(k / 3usize.pow(4 + i as u32) + k));
            }
        }
        let mut values = Vec::new();
        packed.eval_comb_into(&pi, &st, &mut values);
        for k in 0..64 {
            let spi: Vec<Logic3> = pi.iter().map(|p| p.lane(k)).collect();
            let sst: Vec<Logic3> = st.iter().map(|s| s.lane(k)).collect();
            let svals = scalar.eval_comb(&spi, &sst);
            for (idx, v) in svals.iter().enumerate() {
                assert_eq!(values[idx].lane(k), *v, "node {idx} lane {k}");
            }
        }
    }
}
