//! The three-phase §5 fault-grading entry point, shared by the ATPG
//! drop loop and standalone pattern re-grading.
//!
//! [`grade_filled_sequence`] classifies a candidate delay-fault list
//! against one *filled* (X-free) vector sequence, running the paper's
//! three phases bit-parallel:
//!
//! 1. good-machine simulation of the initialization frames
//!    ([`crate::goodsim`]),
//! 2. packed PPO state-difference propagation through the slow-clock
//!    frames ([`crate::fausim::Fausim::propagate_state_diffs_packed`],
//!    one PPO per lane),
//! 3. packed critical-path tracing of the fast frame
//!    ([`crate::tdsim::detected_delay_faults_packed`], 64 candidate
//!    faults per word) with the invalidation check against the relied
//!    PPOs.
//!
//! The ATPG driver (`gdf_core::DelayAtpg::fault_simulate_sequence`)
//! X-fills a `TestSequence` and calls straight into this function; the
//! pattern re-grading API (`gdf_core::session::grade_patterns`) does the
//! same for saved `PatternSet` artifacts — both therefore share one
//! implementation of the §5 semantics.
//!
//! # Example
//!
//! ```
//! use gdf_netlist::{suite, FaultUniverse};
//! use gdf_sim::grading::{grade_filled_sequence, GradeScratch};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let c = suite::s27();
//! let faults = FaultUniverse::default().delay_faults(&c);
//! // Two-frame sequence: V1 then the fast V2 frame, no init/propagation.
//! let frames = vec![vec![false; 4], vec![true; 4]];
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut scratch = GradeScratch::default();
//! let hits = grade_filled_sequence(&c, &frames, 1, &[], &faults, &mut rng, &mut scratch);
//! assert!(hits.len() <= faults.len());
//! ```

use crate::fausim::Fausim;
use crate::goodsim::GoodSimulator;
use crate::packed::SimScratch;
use crate::tdsim::detected_delay_faults_packed;
use crate::waveform::two_frame_values_into;
use gdf_algebra::delay::DelayValue;
use gdf_algebra::logic3::Logic3;
use gdf_netlist::{Circuit, DelayFault, NodeId, TransitionFault};
use rand::rngs::StdRng;
use rand::Rng;

/// Reusable buffers for [`grade_filled_sequence`]: keep one per worker
/// and hand it to every call, so the simulation sweeps allocate nothing
/// after warm-up.
#[derive(Debug, Default, Clone)]
pub struct GradeScratch {
    /// 3-valued conversion of the propagation frames.
    prop: Vec<Vec<Logic3>>,
    /// One PI frame in 3-valued form (phase-1 stepping).
    pi: Vec<Logic3>,
    /// Flip-flop state in the initial (V1) frame after X-fill.
    state1: Vec<bool>,
    /// Flip-flop state in the fast (V2) frame.
    state2: Vec<Logic3>,
    /// Frame-1 binary node values of the waveform evaluation.
    bits: Vec<bool>,
    /// The fault-free two-frame waveform.
    wave: Vec<DelayValue>,
    /// PPOs proven observable by the propagation phase.
    observable: Vec<NodeId>,
    /// Flip-flop indexes whose state difference phase 2 must propagate.
    diff_dffs: Vec<usize>,
    /// The shared packed-simulator scratch.
    sim: SimScratch,
}

/// Runs the three-phase fault simulation of one X-free sequence against
/// an arbitrary candidate fault list, returning the indexes (into
/// `faults`) of the robustly detected ones.
///
/// `filled` holds every applied PI frame; `fast` is the index of the
/// at-speed capture frame (`filled[fast - 1]` launches, `filled[fast]`
/// captures, everything after propagates under the slow clock).
/// `relied_ppos` are the PPO nets whose steady value the sequence's
/// propagation phase relies on — the §5 invalidation check strikes
/// faults that corrupt them. `rng` resolves flip-flop state bits the
/// initialization frames leave unknown (the paper's random fill),
/// drawing once per unresolved bit in flip-flop order.
///
/// # Panics
///
/// Panics if `fast` is 0 or out of bounds of `filled` (a delay-fault
/// grading always needs a launch/capture pair).
pub fn grade_filled_sequence(
    circuit: &Circuit,
    filled: &[Vec<bool>],
    fast: usize,
    relied_ppos: &[NodeId],
    faults: &[DelayFault],
    rng: &mut StdRng,
    scratch: &mut GradeScratch,
) -> Vec<usize> {
    run_phases_one_two(circuit, filled, fast, rng, scratch);

    // Phase 3: robust delay fault simulation of the fast frame, 64
    // candidate faults per word, with the invalidation check.
    let hits = detected_delay_faults_packed(
        circuit,
        &scratch.wave,
        faults,
        &scratch.observable,
        relied_ppos,
        &mut scratch.sim,
    );
    hits.into_iter().map(|(k, _)| k).collect()
}

/// The transition-fault twin of [`grade_filled_sequence`]: identical
/// phases 1 and 2, with phase 3 swapped for the packed *non-robust*
/// final-value classification
/// ([`crate::tfsim::detected_transition_faults_packed`]). The two share
/// one RNG discipline — the same sequence draws the same X-fill — so a
/// transition grading is comparable, fault for fault, with a robust one.
///
/// # Panics
///
/// Panics if `fast` is 0 or out of bounds of `filled`.
pub fn grade_filled_sequence_transition(
    circuit: &Circuit,
    filled: &[Vec<bool>],
    fast: usize,
    relied_ppos: &[NodeId],
    faults: &[TransitionFault],
    rng: &mut StdRng,
    scratch: &mut GradeScratch,
) -> Vec<usize> {
    run_phases_one_two(circuit, filled, fast, rng, scratch);

    // Phase 3: non-robust final-value classification of the fast frame,
    // 64 candidate faults per word, same invalidation rule.
    let hits = crate::tfsim::detected_transition_faults_packed(
        circuit,
        &scratch.wave,
        faults,
        &scratch.observable,
        relied_ppos,
        &mut scratch.sim,
    );
    hits.into_iter().map(|(k, _)| k).collect()
}

/// Phases 1 and 2 of the §5 pipeline, shared by every fault model:
/// good-machine initialization (with random fill of unresolved state
/// bits), two-frame waveform construction into `scratch.wave`, and
/// packed PPO state-difference propagation into `scratch.observable`.
fn run_phases_one_two(
    circuit: &Circuit,
    filled: &[Vec<bool>],
    fast: usize,
    rng: &mut StdRng,
    scratch: &mut GradeScratch,
) {
    assert!(
        fast > 0 && fast < filled.len(),
        "fast frame index {fast} out of range for {} frames",
        filled.len()
    );
    // Phase 1: good-machine simulation of the initialization frames,
    // yielding the state when V1 is applied.
    let sim = GoodSimulator::new(circuit);
    scratch.sim.state.clear();
    scratch.sim.state.resize(circuit.num_dffs(), Logic3::X);
    for v in &filled[..fast.saturating_sub(1)] {
        scratch.pi.clear();
        scratch.pi.extend(v.iter().map(|&b| Logic3::from_bool(b)));
        sim.eval_comb_into(&scratch.pi, &scratch.sim.state, &mut scratch.sim.logic);
        sim.next_state_into(&scratch.sim.logic, &mut scratch.sim.state_next);
        std::mem::swap(&mut scratch.sim.state, &mut scratch.sim.state_next);
    }
    scratch.state1.clear();
    for i in 0..circuit.num_dffs() {
        let b = scratch.sim.state[i].to_bool().unwrap_or_else(|| rng.gen());
        scratch.state1.push(b);
    }
    two_frame_values_into(
        circuit,
        &filled[fast - 1],
        &filled[fast],
        &scratch.state1,
        &mut scratch.bits,
        &mut scratch.wave,
    );

    // Phase 2: which PPOs with non-steady values are observable through
    // the propagation frames? One lane per candidate PPO.
    fill_logic_frames(&filled[fast + 1..], &mut scratch.prop);
    scratch.state2.clear();
    scratch.state2.extend(
        circuit
            .ppos()
            .iter()
            .map(|&ppo| Logic3::from_bool(scratch.wave[ppo.index()].final_value())),
    );
    scratch.observable.clear();
    if !scratch.prop.is_empty() {
        let fausim = Fausim::new(circuit);
        scratch.diff_dffs.clear();
        for (i, &ppo) in circuit.ppos().iter().enumerate() {
            if !scratch.wave[ppo.index()].is_steady_clean() {
                scratch.diff_dffs.push(i);
            }
        }
        for chunk in scratch.diff_dffs.chunks(64) {
            let mask = fausim.propagate_state_diffs_packed(
                &scratch.state2,
                chunk,
                &scratch.prop,
                &mut scratch.sim,
            );
            for (k, &i) in chunk.iter().enumerate() {
                if mask >> k & 1 == 1 {
                    scratch.observable.push(circuit.ppos()[i]);
                }
            }
        }
    }
}

/// Converts boolean frames into 3-valued frames, reusing `dst`'s outer and
/// inner buffer capacity.
fn fill_logic_frames(src: &[Vec<bool>], dst: &mut Vec<Vec<Logic3>>) {
    dst.truncate(src.len());
    while dst.len() < src.len() {
        dst.push(Vec::new());
    }
    for (d, s) in dst.iter_mut().zip(src) {
        d.clear();
        d.extend(s.iter().map(|&b| Logic3::from_bool(b)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{suite, FaultUniverse};
    use rand::SeedableRng;

    #[test]
    fn grading_is_deterministic_and_scratch_reusable() {
        let c = suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let frames = vec![
            vec![false, true, false, true],
            vec![true, true, false, false],
            vec![false, false, true, true],
        ];
        let mut scratch = GradeScratch::default();
        let mut rng = StdRng::seed_from_u64(9);
        let a = grade_filled_sequence(&c, &frames, 1, &[], &faults, &mut rng, &mut scratch);
        let mut rng = StdRng::seed_from_u64(9);
        let b = grade_filled_sequence(&c, &frames, 1, &[], &faults, &mut rng, &mut scratch);
        assert_eq!(a, b, "same RNG state, same classifications");
    }

    #[test]
    #[should_panic(expected = "fast frame index")]
    fn rejects_missing_capture_frame() {
        let c = suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let frames = vec![vec![false; 4]];
        let mut rng = StdRng::seed_from_u64(1);
        grade_filled_sequence(
            &c,
            &frames,
            1,
            &[],
            &faults,
            &mut rng,
            &mut GradeScratch::default(),
        );
    }
}
