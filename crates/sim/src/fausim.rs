//! FAUSIM — the sequential fault simulator integrated in SEMILET.
//!
//! Two services (paper §5, phases 1–2):
//!
//! * [`Fausim::propagate_state_diff`] — *"a D or Dbar value is injected at
//!   each PPO that is not steady one or zero. Then FAUSIM performs global
//!   fault simulation by handling the fault effect like a stuck-at fault
//!   that occurs only at the observation point (PPO) in the fast clock time
//!   frame. All later time frames don't consist of this fault"* — i.e. a
//!   pure state difference propagated through fault-free slow-clock frames.
//! * [`Fausim::stuck_at_detection_frame`] — classic serial sequential
//!   single-stuck-at simulation (the fault persists in every frame), the
//!   simulation substrate for SEMILET's standalone static-fault mode.
//!
//! Both run the good and the faulty machine side by side in 3-valued logic;
//! a fault is observed at a PO only when both machines have *known,
//! differing* values there (the safe criterion under unknown state bits).

use crate::goodsim::GoodSimulator;
use crate::packed::{PackedGoodSim, PackedLogic, SimScratch};
use gdf_algebra::logic3::{eval_gate3, Logic3};
use gdf_netlist::{Circuit, NodeId, StuckFault};

/// Outcome of propagating a latched fault effect toward the POs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationOutcome {
    /// First `(frame, po)` at which the good and faulty machine provably
    /// differ, if any. Frames index into the supplied vector sequence.
    pub observed_at: Option<(usize, NodeId)>,
    /// Flip-flops whose good/faulty values still provably differ after the
    /// last supplied frame (the effect is still alive in the state).
    pub surviving_diffs: Vec<NodeId>,
}

impl PropagationOutcome {
    /// Whether the effect reached a primary output.
    pub fn is_observed(&self) -> bool {
        self.observed_at.is_some()
    }
}

/// The sequential fault simulator.
///
/// # Example
///
/// ```
/// use gdf_algebra::Logic3;
/// use gdf_netlist::suite;
/// use gdf_sim::Fausim;
///
/// let c = suite::s27();
/// let fausim = Fausim::new(&c);
/// // Inject a difference on flip-flop G6 (index 1) in the all-zero state
/// // and drive one frame of all-zero inputs.
/// let good = vec![Logic3::Zero; 3];
/// let outcome = fausim.propagate_state_diff(&good, 1, &[vec![Logic3::Zero; 4]]);
/// // G17 = NOT(G11) and G11 = NOR(G5, G9) sees the difference via G8.
/// assert!(outcome.is_observed());
/// ```
#[derive(Debug, Clone)]
pub struct Fausim<'c> {
    circuit: &'c Circuit,
}

impl<'c> Fausim<'c> {
    /// Creates a FAUSIM instance for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        Fausim { circuit }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Propagates a single-bit state difference through fault-free frames.
    ///
    /// The faulty machine starts in `good_state` with flip-flop `diff_dff`
    /// inverted (the bit must be known). Each vector is one slow-clock
    /// frame.
    ///
    /// # Panics
    ///
    /// Panics if `diff_dff` is out of range or `good_state[diff_dff]` is
    /// `X` (a difference must be definite to be latched as D/D̄).
    pub fn propagate_state_diff(
        &self,
        good_state: &[Logic3],
        diff_dff: usize,
        vectors: &[Vec<Logic3>],
    ) -> PropagationOutcome {
        assert!(diff_dff < self.circuit.num_dffs(), "diff_dff out of range");
        let mut faulty_state = good_state.to_vec();
        faulty_state[diff_dff] = good_state[diff_dff]
            .to_bool()
            .map(|b| Logic3::from_bool(!b))
            .expect("state difference must be on a known bit");
        self.run_pair(good_state, &faulty_state, vectors, None)
    }

    /// Word-parallel variant of [`Fausim::propagate_state_diff`]: one
    /// faulty machine per bit lane, all lanes sharing the fault-free
    /// frames. Lane `k` starts in `good_state` with flip-flop
    /// `diff_dffs[k]` inverted; the returned mask has bit `k` set iff that
    /// lane's difference provably reaches a primary output — lane-wise
    /// identical to `diff_dffs.len()` sequential scalar calls, at the
    /// cost of roughly one.
    ///
    /// # Panics
    ///
    /// Panics if `diff_dffs` has more than 64 entries, or any entry is out
    /// of range or indexes an unknown (`X`) state bit.
    pub fn propagate_state_diffs_packed(
        &self,
        good_state: &[Logic3],
        diff_dffs: &[usize],
        vectors: &[Vec<Logic3>],
        scratch: &mut SimScratch,
    ) -> u64 {
        assert!(diff_dffs.len() <= 64, "at most 64 lanes per word");
        let circuit = self.circuit;
        let sim = GoodSimulator::new(circuit);
        let packed = PackedGoodSim::new(circuit);

        // Good machine state (shared) and per-lane faulty states.
        scratch.state.clear();
        scratch.state.extend_from_slice(good_state);
        scratch.packed_state.clear();
        scratch
            .packed_state
            .extend(good_state.iter().map(|&v| PackedLogic::splat(v)));
        for (k, &d) in diff_dffs.iter().enumerate() {
            assert!(d < circuit.num_dffs(), "diff_dff out of range");
            let flipped = good_state[d]
                .to_bool()
                .map(|b| Logic3::from_bool(!b))
                .expect("state difference must be on a known bit");
            scratch.packed_state[d].set_lane(k, flipped);
        }

        let lanes_mask = if diff_dffs.len() == 64 {
            !0u64
        } else {
            (1u64 << diff_dffs.len()) - 1
        };
        let mut observed = 0u64;
        let mut pi = std::mem::take(&mut scratch.packed_ins);
        for v in vectors {
            sim.eval_comb_into(v, &scratch.state, &mut scratch.logic);
            pi.clear();
            pi.extend(v.iter().map(|&b| PackedLogic::splat(b)));
            packed.eval_comb_into(&pi, &scratch.packed_state, &mut scratch.packed);
            for &po in circuit.outputs() {
                let f = scratch.packed[po.index()];
                match scratch.logic[po.index()].to_bool() {
                    Some(true) => observed |= f.zeros,
                    Some(false) => observed |= f.ones,
                    None => {}
                }
            }
            // Step both machines.
            sim.next_state_into(&scratch.logic, &mut scratch.state_next);
            std::mem::swap(&mut scratch.state, &mut scratch.state_next);
            packed.next_state_into(&scratch.packed, &mut scratch.packed_next);
            std::mem::swap(&mut scratch.packed_state, &mut scratch.packed_next);
        }
        scratch.packed_ins = pi;
        observed & lanes_mask
    }

    /// Runs good and faulty machines over `vectors` with an optional
    /// persistent stuck-at `fault` injected in every frame of the faulty
    /// machine, starting both from the given states.
    fn run_pair(
        &self,
        good_state: &[Logic3],
        faulty_state: &[Logic3],
        vectors: &[Vec<Logic3>],
        fault: Option<StuckFault>,
    ) -> PropagationOutcome {
        let sim = GoodSimulator::new(self.circuit);
        let mut gs = good_state.to_vec();
        let mut fs = faulty_state.to_vec();
        let mut observed_at = None;
        for (frame, v) in vectors.iter().enumerate() {
            let gvals = sim.eval_comb(v, &gs);
            let fvals = self.eval_comb_faulty(v, &fs, fault);
            if observed_at.is_none() {
                for &po in self.circuit.outputs() {
                    let g = gvals[po.index()];
                    let f = fvals[po.index()];
                    if let (Some(gb), Some(fb)) = (g.to_bool(), f.to_bool()) {
                        if gb != fb {
                            observed_at = Some((frame, po));
                            break;
                        }
                    }
                }
            }
            gs = sim.next_state(&gvals);
            fs = self
                .circuit
                .dffs()
                .iter()
                .map(|&ff| {
                    let d = self.circuit.ppo_of_dff(ff);
                    // A branch fault on the D edge overrides what the
                    // flip-flop latches (DFFs sit outside the topo loop).
                    if let Some(f) = fault {
                        if let Some((sink, pin)) = f.site.branch {
                            if f.site.stem == d && sink == ff && pin == 0 {
                                return Logic3::from_bool(f.kind.value());
                            }
                        }
                    }
                    fvals[d.index()]
                })
                .collect();
        }
        let surviving_diffs = self
            .circuit
            .dffs()
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                matches!(
                    (gs[i].to_bool(), fs[i].to_bool()),
                    (Some(a), Some(b)) if a != b
                )
            })
            .map(|(_, &ff)| ff)
            .collect();
        PropagationOutcome {
            observed_at,
            surviving_diffs,
        }
    }

    /// Serial sequential stuck-at simulation: both machines start all-`X`,
    /// the fault persists in every frame of the faulty machine. Returns the
    /// first frame at which a PO provably differs.
    pub fn stuck_at_detection_frame(
        &self,
        fault: StuckFault,
        vectors: &[Vec<Logic3>],
    ) -> Option<usize> {
        let n = self.circuit.num_dffs();
        let all_x = vec![Logic3::X; n];
        self.run_pair(&all_x, &all_x, vectors, Some(fault))
            .observed_at
            .map(|(frame, _)| frame)
    }

    /// Like [`Fausim::stuck_at_detection_frame`], but also reports *which*
    /// primary output observes the fault first.
    pub fn stuck_at_observation(
        &self,
        fault: StuckFault,
        vectors: &[Vec<Logic3>],
    ) -> Option<(usize, NodeId)> {
        let n = self.circuit.num_dffs();
        let all_x = vec![Logic3::X; n];
        self.run_pair(&all_x, &all_x, vectors, Some(fault))
            .observed_at
    }

    /// Simulates all `faults` against one vector sequence, returning the
    /// indexes of those detected (the fault-dropping pass of SEMILET's
    /// standalone mode).
    pub fn drop_detected(&self, faults: &[StuckFault], vectors: &[Vec<Logic3>]) -> Vec<usize> {
        faults
            .iter()
            .enumerate()
            .filter(|&(_, &f)| self.stuck_at_detection_frame(f, vectors).is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Evaluates one frame of the faulty machine: the stuck value overrides
    /// the stem (or one branch) of the fault site.
    fn eval_comb_faulty(
        &self,
        pi: &[Logic3],
        state: &[Logic3],
        fault: Option<StuckFault>,
    ) -> Vec<Logic3> {
        let circuit = self.circuit;
        assert_eq!(pi.len(), circuit.num_inputs());
        assert_eq!(state.len(), circuit.num_dffs());
        let mut values = vec![Logic3::X; circuit.num_nodes()];
        for (i, &id) in circuit.inputs().iter().enumerate() {
            values[id.index()] = pi[i];
        }
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            values[ff.index()] = state[i];
        }
        let stem_override = fault.and_then(|f| {
            if f.site.branch.is_none() {
                Some((f.site.stem, Logic3::from_bool(f.kind.value())))
            } else {
                None
            }
        });
        let branch_override = fault.and_then(|f| {
            f.site
                .branch
                .map(|(sink, pin)| (f.site.stem, sink, pin, Logic3::from_bool(f.kind.value())))
        });
        if let Some((stem, v)) = stem_override {
            if !circuit.node(stem).kind().is_combinational() {
                values[stem.index()] = v;
            }
        }
        let mut ins: Vec<Logic3> = Vec::with_capacity(8);
        for (gate, kind, fanins) in circuit.gates_levelized() {
            ins.clear();
            ins.extend(fanins.iter().enumerate().map(|(pin, &f)| {
                if let Some((stem, sink, fpin, v)) = branch_override {
                    if f == stem && sink == gate && fpin == pin as u8 {
                        return v;
                    }
                }
                values[f.index()]
            }));
            let mut out = eval_gate3(kind, &ins);
            if let Some((stem, v)) = stem_override {
                if stem == gate {
                    out = v;
                }
            }
            values[gate.index()] = out;
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{suite, CircuitBuilder, FaultSite, FaultUniverse, GateKind, StuckAtKind};
    use Logic3::{One, Zero};

    #[test]
    fn state_diff_reaches_po_in_s27() {
        let c = suite::s27();
        let fausim = Fausim::new(&c);
        // Difference on G6 (dff index 1): G8 = AND(G14, G6) with G0=0 makes
        // G14=1, exposing G6; trace G8 → G15/G16 → G9 → G11 → G17.
        let good = vec![Zero, Zero, Zero];
        let out = fausim.propagate_state_diff(&good, 1, &[vec![Zero, Zero, Zero, Zero]]);
        assert!(out.is_observed());
    }

    #[test]
    fn state_diff_blocked_by_controlling_inputs() {
        // y = AND(q, en): with en=0 the difference on q never shows.
        let mut b = CircuitBuilder::new("blocked");
        b.add_input("en");
        b.add_input("d_in");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::Buf, &["d_in"]);
        b.add_gate("y", GateKind::And, &["q", "en"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let fausim = Fausim::new(&c);
        let out = fausim.propagate_state_diff(&[Zero], 0, &[vec![Zero, Zero]]);
        assert!(!out.is_observed());
        assert!(out.surviving_diffs.is_empty(), "difference died with en=0");
        let out = fausim.propagate_state_diff(&[Zero], 0, &[vec![One, Zero]]);
        assert!(out.is_observed());
    }

    #[test]
    fn surviving_difference_tracked() {
        // Shift register: difference takes n frames to reach the output.
        let c = gdf_netlist::generator::shift_register(3);
        let fausim = Fausim::new(&c);
        let good = vec![Zero, Zero, Zero];
        // One frame with shifting enabled: diff moves from q0 to q1.
        let out = fausim.propagate_state_diff(&good, 0, &[vec![Zero, One]]);
        assert!(!out.is_observed());
        assert_eq!(out.surviving_diffs.len(), 1);
        // Three enabled frames: diff on q0 reaches q2 then so.
        let vectors = vec![vec![Zero, One]; 3];
        let out = fausim.propagate_state_diff(&good, 0, &vectors);
        assert!(out.is_observed());
    }

    #[test]
    fn stuck_at_detected_combinational_path() {
        // Single NOT between PI and PO: a sa0 on the input stem flips y.
        let mut b = CircuitBuilder::new("inv");
        b.add_input("a");
        b.add_gate("y", GateKind::Not, &["a"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let fausim = Fausim::new(&c);
        let a = c.node_by_name("a").unwrap();
        let fault = StuckFault {
            site: FaultSite::on_stem(a),
            kind: StuckAtKind::StuckAt0,
        };
        // a=1 exposes sa0.
        assert_eq!(
            fausim.stuck_at_detection_frame(fault, &[vec![One]]),
            Some(0)
        );
        // a=0 does not.
        assert_eq!(fausim.stuck_at_detection_frame(fault, &[vec![Zero]]), None);
    }

    #[test]
    fn branch_fault_differs_from_stem_fault() {
        // s = a; two branches: y1 = AND(s, b), y2 = OR(s, b).
        // A sa0 on branch s→y1 affects y1 only.
        let mut bld = CircuitBuilder::new("branch");
        bld.add_input("a");
        bld.add_input("b");
        bld.add_gate("s", GateKind::Buf, &["a"]);
        bld.add_gate("y1", GateKind::And, &["s", "b"]);
        bld.add_gate("y2", GateKind::Or, &["s", "b"]);
        bld.mark_output("y1");
        bld.mark_output("y2");
        let c = bld.build().unwrap();
        let fausim = Fausim::new(&c);
        let s = c.node_by_name("s").unwrap();
        let y1 = c.node_by_name("y1").unwrap();
        let branch_fault = StuckFault {
            site: FaultSite::on_branch(s, y1, 0),
            kind: StuckAtKind::StuckAt0,
        };
        // a=1, b=1: y1 good=1 faulty=0 → detected; y2 unaffected (stem fine).
        let vectors = vec![vec![One, One]];
        assert_eq!(
            fausim.stuck_at_detection_frame(branch_fault, &vectors),
            Some(0)
        );
        // With b=0, y1 is 0 either way and y2 masks through b? y2 = OR(s,0)=s;
        // the branch to y2 is fault-free so y2 good=faulty → undetected.
        let vectors = vec![vec![One, Zero]];
        assert_eq!(
            fausim.stuck_at_detection_frame(branch_fault, &vectors),
            None
        );
    }

    #[test]
    fn sequential_stuck_at_needs_initialization() {
        // Fault on the shift-register input propagates only after enough
        // enabled frames.
        let c = gdf_netlist::generator::shift_register(2);
        let fausim = Fausim::new(&c);
        let si = c.node_by_name("si").unwrap();
        let fault = StuckFault {
            site: FaultSite::on_stem(si),
            kind: StuckAtKind::StuckAt0,
        };
        // Drive si=1 with enable on: good shifts 1s, faulty shifts 0s.
        let vectors = vec![vec![One, One]; 3];
        assert_eq!(fausim.stuck_at_detection_frame(fault, &vectors), Some(2));
        // Too short a sequence: not detected yet.
        let vectors = vec![vec![One, One]; 2];
        assert_eq!(fausim.stuck_at_detection_frame(fault, &vectors), None);
    }

    #[test]
    fn packed_state_diffs_match_scalar_on_s27() {
        let c = suite::s27();
        let fausim = Fausim::new(&c);
        let mut scratch = crate::SimScratch::default();
        // All 8 known states × a few vector sequences, every dff diffed.
        for state_bits in 0u32..8 {
            let good: Vec<Logic3> = (0..3)
                .map(|i| Logic3::from_bool(state_bits & (1 << i) != 0))
                .collect();
            for seed in 0u32..8 {
                let vectors: Vec<Vec<Logic3>> = (0..2)
                    .map(|f| {
                        (0..4)
                            .map(|i| Logic3::from_bool(seed & (1 << ((i + f) % 4)) != 0))
                            .collect()
                    })
                    .collect();
                let diffs: Vec<usize> = (0..3).collect();
                let mask =
                    fausim.propagate_state_diffs_packed(&good, &diffs, &vectors, &mut scratch);
                for (k, &d) in diffs.iter().enumerate() {
                    let scalar = fausim.propagate_state_diff(&good, d, &vectors);
                    assert_eq!(
                        mask >> k & 1 == 1,
                        scalar.is_observed(),
                        "state {state_bits:03b} seed {seed} dff {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_state_diffs_handle_shift_register_lanes() {
        let c = gdf_netlist::generator::shift_register(3);
        let fausim = Fausim::new(&c);
        let mut scratch = crate::SimScratch::default();
        let good = vec![Zero; 3];
        let vectors = vec![vec![Zero, One]; 3];
        let mask = fausim.propagate_state_diffs_packed(&good, &[0, 1, 2], &vectors, &mut scratch);
        for d in 0..3 {
            let scalar = fausim.propagate_state_diff(&good, d, &vectors);
            assert_eq!(mask >> d & 1 == 1, scalar.is_observed(), "dff {d}");
        }
    }

    #[test]
    fn drop_detected_filters() {
        let c = suite::s27();
        let fausim = Fausim::new(&c);
        let faults = FaultUniverse::default().stuck_faults(&c);
        let vectors = vec![
            vec![Zero, Zero, Zero, Zero],
            vec![One, One, One, One],
            vec![Zero, One, Zero, One],
            vec![One, Zero, One, Zero],
        ];
        let dropped = fausim.drop_detected(&faults, &vectors);
        assert!(!dropped.is_empty(), "some stuck-at faults must be detected");
        assert!(dropped.len() < faults.len(), "not everything is detected");
    }
}
