//! Primitive gate kinds and their Boolean semantics.

use std::fmt;

/// The kind of a netlist node.
///
/// `Input` and `Dff` are *sources* for the combinational core: an `Input`
/// node is a primary input and a `Dff` node's output is a pseudo primary
/// input. A `Dff` node's single fanin is the pseudo primary output it
/// latches. All other kinds are combinational primitives.
///
/// # Example
///
/// ```
/// use gdf_netlist::GateKind;
///
/// assert_eq!(GateKind::And.controlling_value(), Some(false));
/// assert_eq!(GateKind::Nor.controlling_value(), Some(true));
/// assert_eq!(GateKind::Xor.controlling_value(), None);
/// assert!(GateKind::Nand.inverts());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// D flip-flop; fanin\[0\] is the D (pseudo primary output) net.
    Dff,
    /// Non-inverting buffer (1 fanin).
    Buf,
    /// Inverter (1 fanin).
    Not,
    /// N-ary AND.
    And,
    /// N-ary NAND.
    Nand,
    /// N-ary OR.
    Or,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (odd parity).
    Xor,
    /// N-ary XNOR (even parity).
    Xnor,
}

impl GateKind {
    /// All combinational gate kinds (everything except `Input` and `Dff`).
    pub const COMBINATIONAL: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Returns `true` if this kind is a combinational primitive.
    pub fn is_combinational(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Dff)
    }

    /// The *controlling value*: an input at this value forces the gate output
    /// regardless of the other inputs. `None` for parity gates and
    /// single-input gates.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// The *non-controlling value* (complement of the controlling value).
    pub fn noncontrolling_value(self) -> Option<bool> {
        self.controlling_value().map(|v| !v)
    }

    /// Whether the gate inverts its "core" function (NAND/NOR/XNOR/NOT).
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Whether the gate is a parity (XOR-family) gate.
    pub fn is_parity(self) -> bool {
        matches!(self, GateKind::Xor | GateKind::Xnor)
    }

    /// Evaluates the gate over plain Booleans.
    ///
    /// # Panics
    ///
    /// Panics if called on `Input` or `Dff`, or with an arity the gate does
    /// not support (e.g. `Not` with two inputs).
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Input | GateKind::Dff => {
                panic!("eval_bool called on non-combinational node kind {self:?}")
            }
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes exactly one input");
                inputs[0]
            }
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "NOT takes exactly one input");
                !inputs[0]
            }
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Xnor => inputs.iter().filter(|&&b| b).count() % 2 == 0,
        }
    }

    /// Evaluates the gate over packed 64-bit words (one pattern per bit), the
    /// representation used by the parallel-pattern simulator.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GateKind::eval_bool`].
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Input | GateKind::Dff => {
                panic!("eval_word called on non-combinational node kind {self:?}")
            }
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1);
                inputs[0]
            }
            GateKind::Not => {
                assert_eq!(inputs.len(), 1);
                !inputs[0]
            }
            GateKind::And => inputs.iter().fold(!0u64, |a, &b| a & b),
            GateKind::Nand => !inputs.iter().fold(!0u64, |a, &b| a & b),
            GateKind::Or => inputs.iter().fold(0u64, |a, &b| a | b),
            GateKind::Nor => !inputs.iter().fold(0u64, |a, &b| a | b),
            GateKind::Xor => inputs.iter().fold(0u64, |a, &b| a ^ b),
            GateKind::Xnor => !inputs.iter().fold(0u64, |a, &b| a ^ b),
        }
    }

    /// The canonical `.bench` keyword for this gate kind.
    ///
    /// `Input` has no keyword (it is written as an `INPUT(...)` declaration).
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Dff => "DFF",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench` gate keyword (case-insensitive). `BUFF` is accepted
    /// as an alias for `BUF`, as emitted by some ISCAS'89 distributions.
    pub fn from_bench_keyword(kw: &str) -> Option<GateKind> {
        match kw.to_ascii_uppercase().as_str() {
            "DFF" => Some(GateKind::Dff),
            "BUF" | "BUFF" => Some(GateKind::Buf),
            "NOT" | "INV" => Some(GateKind::Not),
            "AND" => Some(GateKind::And),
            "NAND" => Some(GateKind::Nand),
            "OR" => Some(GateKind::Or),
            "NOR" => Some(GateKind::Nor),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            _ => None,
        }
    }

    /// Valid fanin range `(min, max)` for the gate kind; `max == usize::MAX`
    /// means unbounded.
    pub fn arity_range(self) -> (usize, usize) {
        match self {
            GateKind::Input => (0, 0),
            GateKind::Dff | GateKind::Buf | GateKind::Not => (1, 1),
            _ => (1, usize::MAX),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
        assert_eq!(GateKind::And.noncontrolling_value(), Some(true));
    }

    #[test]
    fn eval_bool_matches_truth_tables() {
        use GateKind::*;
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(And.eval_bool(&[a, b]), a && b);
                assert_eq!(Nand.eval_bool(&[a, b]), !(a && b));
                assert_eq!(Or.eval_bool(&[a, b]), a || b);
                assert_eq!(Nor.eval_bool(&[a, b]), !(a || b));
                assert_eq!(Xor.eval_bool(&[a, b]), a ^ b);
                assert_eq!(Xnor.eval_bool(&[a, b]), !(a ^ b));
            }
            assert_eq!(Not.eval_bool(&[a]), !a);
            assert_eq!(Buf.eval_bool(&[a]), a);
        }
    }

    #[test]
    fn eval_word_agrees_with_eval_bool() {
        use GateKind::*;
        for kind in [And, Nand, Or, Nor, Xor, Xnor] {
            for pat in 0u64..8 {
                let a = pat & 1 != 0;
                let b = pat & 2 != 0;
                let c = pat & 4 != 0;
                let word = kind.eval_word(&[
                    if a { !0 } else { 0 },
                    if b { !0 } else { 0 },
                    if c { !0 } else { 0 },
                ]);
                let expect = kind.eval_bool(&[a, b, c]);
                assert_eq!(word == !0, expect, "{kind:?} {a}{b}{c}");
                assert_eq!(word == 0, !expect, "{kind:?} {a}{b}{c}");
            }
        }
    }

    #[test]
    fn three_input_parity() {
        assert!(GateKind::Xor.eval_bool(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bool(&[true, true, false]));
        assert!(!GateKind::Xnor.eval_bool(&[true, true, true]));
    }

    #[test]
    fn keyword_round_trip() {
        for kind in GateKind::COMBINATIONAL {
            assert_eq!(
                GateKind::from_bench_keyword(kind.bench_keyword()),
                Some(kind)
            );
        }
        assert_eq!(GateKind::from_bench_keyword("buff"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_bench_keyword("dff"), Some(GateKind::Dff));
        assert_eq!(GateKind::from_bench_keyword("bogus"), None);
    }

    #[test]
    fn display_uses_bench_keyword() {
        assert_eq!(GateKind::Nand.to_string(), "NAND");
    }
}
