//! Writer for the ISCAS'89 `.bench` netlist format.

use crate::circuit::Circuit;
use crate::gate::GateKind;
use std::fmt::Write as _;

/// Serializes a circuit to `.bench` text.
///
/// The output parses back to an identical circuit (same names, kinds, pin
/// order and output markings) via [`crate::parser::parse_bench`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), gdf_netlist::ParseBenchError> {
/// use gdf_netlist::{parse_bench, to_bench, suite};
///
/// let c = suite::s27();
/// let text = to_bench(&c);
/// let round_trip = parse_bench(c.name(), &text)?;
/// assert_eq!(round_trip.num_gates(), c.num_gates());
/// # Ok(())
/// # }
/// ```
pub fn to_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let stats = circuit.stats();
    let _ = writeln!(out, "# {stats}");
    for &pi in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.node(pi).name());
    }
    for &po in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.node(po).name());
    }
    let _ = writeln!(out);
    for &dff in circuit.dffs() {
        let node = circuit.node(dff);
        let d = circuit.node(node.fanin()[0]).name();
        let _ = writeln!(out, "{} = DFF({})", node.name(), d);
    }
    for &gate in circuit.topo_order() {
        let node = circuit.node(gate);
        let args: Vec<&str> = node
            .fanin()
            .iter()
            .map(|&f| circuit.node(f).name())
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            node.name(),
            node.kind().bench_keyword(),
            args.join(", ")
        );
    }
    // `GateKind::Input` nodes need no statement beyond the INPUT decl.
    debug_assert!(circuit
        .inputs()
        .iter()
        .all(|&i| circuit.node(i).kind() == GateKind::Input));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_bench;

    #[test]
    fn round_trip_preserves_structure() {
        let src = "
            INPUT(a)
            INPUT(b)
            OUTPUT(y)
            OUTPUT(d)
            q = DFF(d)
            d = NAND(a, q)
            y = XOR(b, d)
        ";
        let c1 = parse_bench("rt", src).unwrap();
        let text = to_bench(&c1);
        let c2 = parse_bench("rt", &text).unwrap();
        assert_eq!(c1.num_inputs(), c2.num_inputs());
        assert_eq!(c1.num_outputs(), c2.num_outputs());
        assert_eq!(c1.num_dffs(), c2.num_dffs());
        assert_eq!(c1.num_gates(), c2.num_gates());
        for n1 in c1.nodes() {
            let id2 = c2.node_by_name(n1.name()).expect("name preserved");
            let n2 = c2.node(id2);
            assert_eq!(n1.kind(), n2.kind());
            assert_eq!(n1.is_output(), n2.is_output());
            let f1: Vec<&str> = n1.fanin().iter().map(|&f| c1.node(f).name()).collect();
            let f2: Vec<&str> = n2.fanin().iter().map(|&f| c2.node(f).name()).collect();
            assert_eq!(f1, f2, "pin order preserved for {}", n1.name());
        }
    }
}
