//! Delay-fault equivalence collapsing.
//!
//! Two gate delay faults are *equivalent* when every (robust) test for one
//! detects the other. For the gate delay fault model the safe structural
//! equivalences run through single-input gates:
//!
//! * `b = BUF(a)`, `a` single-fanout: `a StR ≡ b StR`, `a StF ≡ b StF` —
//!   every transition passes unchanged and no other path exists;
//! * `b = NOT(a)`, `a` single-fanout: polarities swap (`a StR ≡ b StF`);
//! * a fanout *branch* feeding a BUF/NOT collapses onto the gate's output
//!   stem the same way (the branch's only continuation is through the
//!   gate).
//!
//! Controlling-value equivalences familiar from stuck-at collapsing (AND
//! output sa0 ≡ input sa0) do **not** carry over: delay-fault detection
//! conditions depend on which input transitions last, so only the chain
//! rules above are applied. Collapsing shrinks the fault list the
//! generator must target; classifications transfer to all class members.

use crate::circuit::{Circuit, NodeId};
use crate::fault::{DelayFault, Fault, FaultSite};
use crate::gate::GateKind;
use std::collections::HashMap;

/// Equivalence classes over a fault list: the shared shape behind
/// [`CollapsedFaults`] (delay-typed representatives) and
/// [`FaultClasses`] (model-tagged [`Fault`] representatives).
#[derive(Debug, Clone)]
pub struct Classes<F> {
    /// One representative per equivalence class, in first-occurrence order.
    pub representatives: Vec<F>,
    /// For every input fault (by index into the original list), the index
    /// of its representative in [`Classes::representatives`].
    pub class_of: Vec<usize>,
}

impl<F> Classes<F> {
    /// All members (original-list indexes) of the class with the given
    /// representative index.
    pub fn members(&self, class: usize) -> Vec<usize> {
        self.class_of
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Collapse ratio (`representatives / original`), 1.0 = nothing
    /// collapsed.
    pub fn ratio(&self) -> f64 {
        if self.class_of.is_empty() {
            1.0
        } else {
            self.representatives.len() as f64 / self.class_of.len() as f64
        }
    }
}

/// The result of collapsing a [`DelayFault`] list.
pub type CollapsedFaults = Classes<DelayFault>;

/// Model-generic equivalence classes over a [`Fault`] list — what the
/// [`crate::model::FaultModel::collapse`] trait method returns.
pub type FaultClasses = Classes<Fault>;

/// Collapses a fault list of **any one model** under the chain
/// equivalences — the generic engine behind [`collapse_delay_faults`]
/// and the [`crate::model::FaultModel`] trait. The rules are the safe
/// structural ones that hold for all three built-in models:
///
/// * `b = BUF(a)`, `a` single-fanout: the fault on `a` is equivalent to
///   the same-polarity fault on `b`;
/// * `b = NOT(a)`, `a` single-fanout: polarities swap (a rising input is
///   a falling output; an input stuck at 0 is an output stuck at 1);
/// * a fanout *branch* feeding a BUF/NOT collapses onto the gate's
///   output stem the same way.
///
/// Mixed-model lists are legal; equivalences only ever link faults of
/// the same model (the union lookup is by exact fault value).
pub fn collapse_faults(circuit: &Circuit, faults: &[Fault]) -> FaultClasses {
    let mut parent: Vec<usize> = (0..faults.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    fn unite(parent: &mut [usize], a: usize, b: usize) {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            let lo = ra.min(rb);
            let hi = ra.max(rb);
            parent[hi] = lo;
        }
    }

    let index: HashMap<Fault, usize> = faults.iter().enumerate().map(|(i, &f)| (f, i)).collect();

    for &gate in circuit.topo_order() {
        let node = circuit.node(gate);
        let inverts = match node.kind() {
            GateKind::Buf => false,
            GateKind::Not => true,
            _ => continue,
        };
        let src: NodeId = node.fanin()[0];
        let single_fanout = circuit.node(src).fanout().len() == 1;
        for model in crate::model::ModelKind::ALL {
            for p in 0..2 {
                let out_p = if inverts { 1 - p } else { p };
                let out = index
                    .get(&model.fault_at(FaultSite::on_stem(gate), out_p))
                    .copied();
                let src_site = if single_fanout {
                    // Whole stem flows through this gate.
                    FaultSite::on_stem(src)
                } else {
                    // Only the branch into this gate is equivalent.
                    FaultSite::on_branch(src, gate, 0)
                };
                let input = index.get(&model.fault_at(src_site, p)).copied();
                if let (Some(a), Some(b)) = (input, out) {
                    unite(&mut parent, a, b);
                }
            }
        }
    }

    // Build representative list in first-occurrence order.
    let mut rep_index: HashMap<usize, usize> = HashMap::new();
    let mut representatives = Vec::new();
    let mut class_of = Vec::with_capacity(faults.len());
    for i in 0..faults.len() {
        let root = find(&mut parent, i);
        let class = *rep_index.entry(root).or_insert_with(|| {
            representatives.push(faults[root]);
            representatives.len() - 1
        });
        class_of.push(class);
    }
    FaultClasses {
        representatives,
        class_of,
    }
}

/// Collapses `faults` under the chain equivalences.
///
/// # Example
///
/// ```
/// use gdf_netlist::collapse::collapse_delay_faults;
/// use gdf_netlist::{CircuitBuilder, FaultUniverse, GateKind};
///
/// let mut b = CircuitBuilder::new("chain");
/// b.add_input("a");
/// b.add_gate("n1", GateKind::Not, &["a"]);
/// b.add_gate("n2", GateKind::Not, &["n1"]);
/// b.mark_output("n2");
/// let c = b.build().expect("valid");
/// let faults = FaultUniverse::default().delay_faults(&c);
/// let collapsed = collapse_delay_faults(&c, &faults);
/// // a-StR ≡ n1-StF ≡ n2-StR and the mirror class: 6 faults → 2 classes.
/// assert_eq!(collapsed.representatives.len(), 2);
/// ```
pub fn collapse_delay_faults(circuit: &Circuit, faults: &[DelayFault]) -> CollapsedFaults {
    let wrapped: Vec<Fault> = faults.iter().map(|&f| Fault::Delay(f)).collect();
    let classes = collapse_faults(circuit, &wrapped);
    CollapsedFaults {
        representatives: classes
            .representatives
            .into_iter()
            .map(|f| f.as_delay().expect("delay input, delay representatives"))
            .collect(),
        class_of: classes.class_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::fault::{DelayFaultKind, FaultUniverse};

    #[test]
    fn buffer_chain_collapses_without_polarity_flip() {
        let mut b = CircuitBuilder::new("bufchain");
        b.add_input("a");
        b.add_gate("b1", GateKind::Buf, &["a"]);
        b.add_gate("b2", GateKind::Buf, &["b1"]);
        b.mark_output("b2");
        let c = b.build().unwrap();
        let faults = FaultUniverse::default().delay_faults(&c);
        let col = collapse_delay_faults(&c, &faults);
        assert_eq!(col.representatives.len(), 2);
        // Classes keep polarity separate.
        for class in 0..2 {
            let kinds: Vec<DelayFaultKind> =
                col.members(class).iter().map(|&i| faults[i].kind).collect();
            assert!(kinds.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn inverter_flips_polarity_in_class() {
        let mut b = CircuitBuilder::new("inv");
        b.add_input("a");
        b.add_gate("n", GateKind::Not, &["a"]);
        b.mark_output("n");
        let c = b.build().unwrap();
        let faults = FaultUniverse::default().delay_faults(&c);
        let col = collapse_delay_faults(&c, &faults);
        assert_eq!(col.representatives.len(), 2);
        let a = c.node_by_name("a").unwrap();
        let n = c.node_by_name("n").unwrap();
        // a StR must share a class with n StF.
        let idx_a_str = faults
            .iter()
            .position(|f| f.site == FaultSite::on_stem(a) && f.kind == DelayFaultKind::SlowToRise)
            .unwrap();
        let idx_n_stf = faults
            .iter()
            .position(|f| f.site == FaultSite::on_stem(n) && f.kind == DelayFaultKind::SlowToFall)
            .unwrap();
        assert_eq!(col.class_of[idx_a_str], col.class_of[idx_n_stf]);
    }

    #[test]
    fn fanout_stems_do_not_collapse_through() {
        // a fans out to two buffers: the stem is NOT equivalent to either
        // buffer output (only the branches are).
        let mut b = CircuitBuilder::new("fan");
        b.add_input("a");
        b.add_gate("b1", GateKind::Buf, &["a"]);
        b.add_gate("b2", GateKind::Buf, &["a"]);
        b.mark_output("b1");
        b.mark_output("b2");
        let c = b.build().unwrap();
        let faults = FaultUniverse::default().delay_faults(&c);
        let col = collapse_delay_faults(&c, &faults);
        // Universe: stems a,b1,b2 + branches a→b1, a→b2 = 5 sites ×2 = 10.
        // Branch a→b1 ≡ b1, branch a→b2 ≡ b2 → 3 sites ×2 = 6 classes.
        assert_eq!(faults.len(), 10);
        assert_eq!(col.representatives.len(), 6);
        let a = c.node_by_name("a").unwrap();
        let b1 = c.node_by_name("b1").unwrap();
        let stem_class = col.class_of[faults
            .iter()
            .position(|f| f.site == FaultSite::on_stem(a) && f.kind == DelayFaultKind::SlowToRise)
            .unwrap()];
        let b1_class = col.class_of[faults
            .iter()
            .position(|f| f.site == FaultSite::on_stem(b1) && f.kind == DelayFaultKind::SlowToRise)
            .unwrap()];
        assert_ne!(stem_class, b1_class);
    }

    #[test]
    fn collapse_reduces_s27_universe() {
        let c = crate::suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let col = collapse_delay_faults(&c, &faults);
        assert!(col.representatives.len() < faults.len());
        assert!(col.ratio() < 1.0);
        // Every fault belongs to exactly one class with a valid index.
        for &class in &col.class_of {
            assert!(class < col.representatives.len());
        }
    }

    #[test]
    fn chain_classes_have_multiple_members() {
        // Semantic soundness (identical detecting pattern sets per class)
        // is cross-checked against TDsim in `tests/collapse_semantics.rs`;
        // here only the structural grouping is asserted.
        let mut b = CircuitBuilder::new("sem");
        b.add_input("a");
        b.add_input("en");
        b.add_gate("n1", GateKind::Not, &["a"]);
        b.add_gate("b1", GateKind::Buf, &["n1"]);
        b.add_gate("y", GateKind::And, &["b1", "en"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let faults = FaultUniverse::default().delay_faults(&c);
        let col = collapse_delay_faults(&c, &faults);
        let n1 = c.node_by_name("n1").unwrap();
        let idx = faults
            .iter()
            .position(|f| f.site == FaultSite::on_stem(n1) && f.kind == DelayFaultKind::SlowToRise)
            .unwrap();
        assert!(col.members(col.class_of[idx]).len() >= 2);
    }
}
