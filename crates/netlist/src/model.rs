//! The pluggable fault-model layer.
//!
//! The paper evaluates one fault model (robust gate delay faults), but
//! its accounting frame — fault universes, collapse classes, coverage —
//! is model-generic. This module makes the model a first-class API
//! instead of a closed enum grown one variant at a time:
//!
//! * [`ModelKind`] — the stable identity of a model (`delay`, `stuck`,
//!   `transition`), the value configs and artifacts record;
//! * [`FaultModel`] — the object-safe trait a model implements:
//!   enumerate sites into faults, collapse into equivalence classes
//!   (through the [`crate::collapse`] machinery), describe faults by
//!   signal name;
//! * [`FaultSet`] — a *lazy*, deterministic enumeration of a model's
//!   universe. Iteration is O(1) in memory, so a million-fault universe
//!   never materializes as one `Vec`; [`FaultSet::next_chunk`] drains it
//!   in bounded chunks for streaming consumers.
//!
//! Three models ship built in: [`DelayModel`] (the paper's robust gate
//! delay faults), [`StuckModel`] (the SEMILET single-stuck-at
//! substrate), and [`TransitionModel`] (gross-delay transition faults,
//! graded non-robustly through the packed three-phase pipeline) — the
//! third exists precisely to prove the trait carries a model the
//! original two-variant enum never anticipated.
//!
//! # Example
//!
//! ```
//! use gdf_netlist::model::{FaultSet, ModelKind};
//! use gdf_netlist::{suite, FaultUniverse};
//!
//! let c = suite::s27();
//! let universe = FaultUniverse::default();
//! let mut set = FaultSet::new(&c, universe, ModelKind::Transition);
//! let expected = 2 * universe.site_count(&c); // {str, stf} per site
//! assert_eq!(set.len(), expected);
//!
//! // Drain in bounded chunks: no full materialization.
//! let mut chunk = Vec::new();
//! let mut total = 0;
//! while set.next_chunk(10, &mut chunk) > 0 {
//!     assert!(chunk.len() <= 10);
//!     total += chunk.len();
//! }
//! assert_eq!(total, expected);
//! ```

use crate::circuit::{Circuit, NodeId};
use crate::collapse::{collapse_faults, FaultClasses};
use crate::fault::{
    DelayFault, DelayFaultKind, Fault, FaultSite, FaultUniverse, StuckAtKind, StuckFault,
    TransitionFault,
};
use std::fmt;

/// The stable identity of a fault model — what configurations, artifacts
/// and the wire formats record. [`ModelKind::model`] resolves it to the
/// [`FaultModel`] implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// Robust gate delay faults (the paper's model): slow-to-rise /
    /// slow-to-fall, tested under the robust sensitization criterion.
    Delay,
    /// Single stuck-at faults (the SEMILET sequential substrate).
    Stuck,
    /// Transition (gross-delay) faults: slow-to-rise / slow-to-fall with
    /// only the final-value difference required to propagate
    /// (non-robust sensitization).
    Transition,
}

impl ModelKind {
    /// Every built-in model, in stable order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Delay, ModelKind::Stuck, ModelKind::Transition];

    /// The stable wire/CLI name (`"delay"`, `"stuck"`, `"transition"`).
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Delay => "delay",
            ModelKind::Stuck => "stuck",
            ModelKind::Transition => "transition",
        }
    }

    /// The [`FaultModel`] implementation behind this kind.
    pub fn model(self) -> &'static dyn FaultModel {
        match self {
            ModelKind::Delay => &DelayModel,
            ModelKind::Stuck => &StuckModel,
            ModelKind::Transition => &TransitionModel,
        }
    }

    /// Builds the fault of this model at `site` with polarity `p`
    /// (`0`/`1`, flipped by inverters during collapsing): rise/fall for
    /// the delay and transition models, sa0/sa1 for stuck-at.
    pub fn fault_at(self, site: FaultSite, p: usize) -> Fault {
        match self {
            ModelKind::Delay => Fault::Delay(DelayFault {
                site,
                kind: DelayFaultKind::ALL[p],
            }),
            ModelKind::Stuck => Fault::Stuck(StuckFault {
                site,
                kind: StuckAtKind::ALL[p],
            }),
            ModelKind::Transition => Fault::Transition(TransitionFault {
                site,
                kind: DelayFaultKind::ALL[p],
            }),
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    /// Inverse of [`ModelKind::name`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "delay" => Ok(ModelKind::Delay),
            "stuck" | "stuck-at" | "stuckat" => Ok(ModelKind::Stuck),
            "transition" => Ok(ModelKind::Transition),
            other => Err(format!(
                "unknown fault model `{other}` (delay|stuck|transition)"
            )),
        }
    }
}

/// The pluggable fault-model interface.
///
/// A model knows how to turn fault *sites* into faults (two per site for
/// every built-in model), how to collapse a fault list into equivalence
/// classes, and how to render a fault against a circuit's signal names.
/// Everything is deterministic: two calls with the same inputs enumerate
/// the same faults in the same order — the foundation of the engine's
/// serial ≡ parallel ≡ resumed invariant.
pub trait FaultModel: Sync {
    /// The stable identity of this model.
    fn kind(&self) -> ModelKind;

    /// The stable display/wire name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Whether `fault` belongs to this model.
    fn owns(&self, fault: Fault) -> bool {
        fault.model() == self.kind()
    }

    /// Lazily enumerates the model's universe over `circuit` under the
    /// site options, in deterministic order (node order; per node: stem
    /// then branches; per site: both polarities).
    fn enumerate<'c>(&self, circuit: &'c Circuit, universe: &FaultUniverse) -> FaultSet<'c> {
        FaultSet::new(circuit, *universe, self.kind())
    }

    /// Collapses `faults` into structural equivalence classes via the
    /// chain rules of [`crate::collapse`] (BUF/NOT chains; inverters
    /// flip the polarity). Faults of other models are left singleton.
    fn collapse(&self, circuit: &Circuit, faults: &[Fault]) -> FaultClasses {
        collapse_faults(circuit, faults)
    }

    /// Human-readable description of a fault of this model.
    fn describe(&self, fault: Fault, circuit: &Circuit) -> String {
        fault.describe(circuit)
    }
}

/// The paper's robust gate-delay-fault model.
pub struct DelayModel;

impl FaultModel for DelayModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Delay
    }
}

/// The single-stuck-at model (SEMILET substrate).
pub struct StuckModel;

impl FaultModel for StuckModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Stuck
    }
}

/// The transition (gross-delay) fault model.
pub struct TransitionModel;

impl FaultModel for TransitionModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Transition
    }
}

/// A lazy, deterministic enumeration of one model's fault universe.
///
/// The iterator holds only a cursor (node index, site-within-node,
/// polarity), so iteration never materializes the universe; `len()` is
/// computed up front with one pass over the node list. The enumeration
/// order is identical to the eager [`FaultUniverse::delay_faults`] /
/// [`FaultUniverse::stuck_faults`] lists, which existing artifacts'
/// fault indexes depend on.
pub struct FaultSet<'c> {
    circuit: &'c Circuit,
    universe: FaultUniverse,
    kind: ModelKind,
    /// Current node index.
    node: usize,
    /// Site within the current node: 0 = stem, 1.. = branch index + 1.
    site: usize,
    /// Polarity within the current site (0/1).
    polarity: usize,
    /// Faults still to be yielded.
    remaining: usize,
}

impl<'c> FaultSet<'c> {
    /// A fresh enumeration of `kind`'s universe over `circuit`.
    pub fn new(circuit: &'c Circuit, universe: FaultUniverse, kind: ModelKind) -> Self {
        let remaining = 2 * universe.site_count(circuit);
        FaultSet {
            circuit,
            universe,
            kind,
            node: 0,
            site: 0,
            polarity: 0,
            remaining,
        }
    }

    /// The model being enumerated.
    pub fn model(&self) -> ModelKind {
        self.kind
    }

    /// Faults not yet yielded.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the enumeration is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Clears `out` and refills it with up to `max` faults, returning how
    /// many were produced (0 when exhausted). The deterministic-chunk
    /// entry point for consumers that must bound their memory.
    pub fn next_chunk(&mut self, max: usize, out: &mut Vec<Fault>) -> usize {
        out.clear();
        out.extend(self.by_ref().take(max));
        out.len()
    }

    /// Number of fault sites of the current node, or `None` when the node
    /// hosts no sites under the universe options — the shared
    /// [`FaultUniverse::node_sites`] rule, so the lazy cursor can never
    /// drift from the eager enumeration.
    fn sites_of(&self, node: usize) -> Option<usize> {
        self.universe.node_sites(&self.circuit.nodes()[node])
    }

    /// Advances the cursor past `count` faults without materializing
    /// them, in O(nodes skipped) rather than O(faults skipped): whole
    /// nodes are stepped over by their site counts, and the final
    /// partial node is entered by direct index arithmetic (faults are
    /// site-major, polarity-minor within a node).
    fn advance(&mut self, count: usize) {
        let count = count.min(self.remaining);
        self.remaining -= count;
        // Offset within the current node's remaining faults.
        let mut offset = 2 * self.site + self.polarity + count;
        let nodes = self.circuit.nodes();
        while self.node < nodes.len() {
            let Some(sites) = self.sites_of(self.node) else {
                self.node += 1;
                continue;
            };
            if offset < 2 * sites {
                self.site = offset / 2;
                self.polarity = offset % 2;
                return;
            }
            offset -= 2 * sites;
            self.node += 1;
        }
        self.site = 0;
        self.polarity = 0;
    }

    /// Splits the *remaining* enumeration into `n` contiguous,
    /// deterministic shards that concatenate back to exactly this
    /// enumeration's order: shard sizes are `len/n` with the first
    /// `len % n` shards one fault larger, so boundaries depend only on
    /// `(len, n)` — the property a distributed work plan records and
    /// relies on. `n` is clamped to at least 1; when `n > len()` the
    /// trailing shards are empty.
    ///
    /// Each shard is itself a [`FaultSet`] whose cursor starts at its
    /// range boundary (positioned in O(nodes), never by iterating
    /// faults) and whose [`FaultSet::len`] is the shard size.
    pub fn split(self, n: usize) -> Vec<FaultSet<'c>> {
        let n = n.max(1);
        let total = self.remaining;
        let (base, extra) = (total / n, total % n);
        let mut shards = Vec::with_capacity(n);
        let mut cursor = self;
        for i in 0..n {
            let size = base + usize::from(i < extra);
            let mut shard = FaultSet {
                circuit: cursor.circuit,
                universe: cursor.universe,
                kind: cursor.kind,
                node: cursor.node,
                site: cursor.site,
                polarity: cursor.polarity,
                remaining: cursor.remaining,
            };
            shard.remaining = size;
            cursor.advance(size);
            shards.push(shard);
        }
        shards
    }

    /// The sub-enumeration covering universe indexes `[lo, hi)` of a
    /// fresh enumeration — the random-access form of [`FaultSet::split`]
    /// a coordinator uses to reconstruct one recorded work unit without
    /// enumerating the shards before it.
    pub fn range(
        circuit: &'c Circuit,
        universe: FaultUniverse,
        kind: ModelKind,
        lo: usize,
        hi: usize,
    ) -> Self {
        let mut set = FaultSet::new(circuit, universe, kind);
        let hi = hi.min(set.remaining).max(lo);
        set.advance(lo);
        set.remaining = hi - lo;
        set
    }
}

impl Iterator for FaultSet<'_> {
    type Item = Fault;

    fn next(&mut self) -> Option<Fault> {
        let nodes = self.circuit.nodes();
        // A sharded set ([`FaultSet::split`]) ends at its range boundary,
        // not at the end of the node list.
        if self.remaining == 0 {
            return None;
        }
        loop {
            if self.node >= nodes.len() {
                return None;
            }
            let Some(sites) = self.sites_of(self.node) else {
                self.node += 1;
                continue;
            };
            if self.site >= sites {
                self.node += 1;
                self.site = 0;
                continue;
            }
            let stem = NodeId(self.node as u32);
            let site = if self.site == 0 {
                FaultSite::on_stem(stem)
            } else {
                let (sink, pin) = nodes[self.node].fanout()[self.site - 1];
                FaultSite::on_branch(stem, sink, pin)
            };
            let fault = self.kind.fault_at(site, self.polarity);
            self.polarity += 1;
            if self.polarity == 2 {
                self.polarity = 0;
                self.site += 1;
            }
            self.remaining -= 1;
            return Some(fault);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for FaultSet<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn lazy_enumeration_matches_eager_lists() {
        let c = suite::s27();
        for universe in [FaultUniverse::default(), FaultUniverse::stems_only()] {
            let delay: Vec<Fault> = FaultSet::new(&c, universe, ModelKind::Delay).collect();
            let eager: Vec<Fault> = universe
                .delay_faults(&c)
                .into_iter()
                .map(Fault::Delay)
                .collect();
            assert_eq!(delay, eager, "delay order preserved");

            let stuck: Vec<Fault> = FaultSet::new(&c, universe, ModelKind::Stuck).collect();
            let eager: Vec<Fault> = universe
                .stuck_faults(&c)
                .into_iter()
                .map(Fault::Stuck)
                .collect();
            assert_eq!(stuck, eager, "stuck order preserved");

            let transition: Vec<Fault> =
                FaultSet::new(&c, universe, ModelKind::Transition).collect();
            assert_eq!(transition.len(), delay.len());
            for (t, d) in transition.iter().zip(&delay) {
                assert_eq!(t.site(), d.site(), "transition mirrors delay sites");
            }
        }
    }

    #[test]
    fn exact_size_and_chunking() {
        let c = suite::s27();
        let mut set = FaultSet::new(&c, FaultUniverse::default(), ModelKind::Delay);
        let total = set.len();
        assert_eq!(total, FaultUniverse::default().delay_faults(&c).len());
        let mut chunk = Vec::new();
        let mut seen = Vec::new();
        // Awkward chunk size on purpose: boundaries must not skew order.
        while set.next_chunk(7, &mut chunk) > 0 {
            assert_eq!(set.len(), total - seen.len() - chunk.len());
            seen.extend(chunk.iter().copied());
        }
        assert_eq!(seen.len(), total);
        let eager: Vec<Fault> =
            FaultSet::new(&c, FaultUniverse::default(), ModelKind::Delay).collect();
        assert_eq!(seen, eager);
    }

    /// Exhaustive shard proof over the whole benchmark suite: for every
    /// circuit, every model and a spread of shard counts — including
    /// `n = len` (all 1-element shards) and `n > len` (empty shards) —
    /// the concatenated shard enumerations equal the unsharded order,
    /// and the recorded `[lo, hi)` boundaries reconstruct each shard via
    /// [`FaultSet::range`].
    #[test]
    fn split_concatenation_is_exhaustive_over_the_suite() {
        let mut circuits = suite::table3_suite();
        for (name, text) in suite::EXTRA_BENCHES {
            circuits.push(crate::parse_bench(name, text).unwrap_or_else(|e| panic!("{name}: {e}")));
        }
        for c in &circuits {
            for universe in [FaultUniverse::default(), FaultUniverse::stems_only()] {
                for kind in ModelKind::ALL {
                    let whole: Vec<Fault> = FaultSet::new(c, universe, kind).collect();
                    let total = whole.len();
                    for n in [1, 2, 3, 7, total.max(1), total + 5] {
                        let shards = FaultSet::new(c, universe, kind).split(n);
                        assert_eq!(shards.len(), n.max(1));
                        let mut concat = Vec::with_capacity(total);
                        let mut lo = 0usize;
                        for shard in shards {
                            let size = shard.len();
                            let hi = lo + size;
                            let faults: Vec<Fault> = shard.collect();
                            assert_eq!(faults.len(), size, "{}: len is exact", c.name());
                            let by_range: Vec<Fault> =
                                FaultSet::range(c, universe, kind, lo, hi).collect();
                            assert_eq!(
                                faults,
                                by_range,
                                "{}: range [{}‥{}) rebuilds the shard",
                                c.name(),
                                lo,
                                hi
                            );
                            concat.extend(faults);
                            lo = hi;
                        }
                        assert_eq!(lo, total, "{}: shard sizes sum to the universe", c.name());
                        assert_eq!(
                            concat,
                            whole,
                            "{}: n={} concatenation preserves order",
                            c.name(),
                            n
                        );
                    }
                    // Empty and 1-element shards behave.
                    if total > 0 {
                        let ones = FaultSet::new(c, universe, kind).split(total);
                        assert!(ones.iter().all(|s| s.len() == 1));
                        let with_empty = FaultSet::new(c, universe, kind).split(total + 3);
                        assert_eq!(
                            with_empty.iter().filter(|s| s.is_empty()).count(),
                            3,
                            "{}: n>len yields exactly n-len empty shards",
                            c.name()
                        );
                        for empty in with_empty.into_iter().filter(|s| s.is_empty()) {
                            assert_eq!(empty.count(), 0, "empty shards yield nothing");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn split_of_a_partially_drained_set_covers_the_rest() {
        let c = suite::s27();
        let mut set = FaultSet::new(&c, FaultUniverse::default(), ModelKind::Delay);
        let whole: Vec<Fault> =
            FaultSet::new(&c, FaultUniverse::default(), ModelKind::Delay).collect();
        let head: Vec<Fault> = set.by_ref().take(5).collect();
        assert_eq!(head, whole[..5]);
        let tail: Vec<Fault> = set.split(3).into_iter().flatten().collect();
        assert_eq!(
            tail,
            whole[5..],
            "split picks up exactly where iteration stopped"
        );
    }

    #[test]
    fn model_kind_names_round_trip() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.name().parse::<ModelKind>().unwrap(), kind);
            assert_eq!(kind.model().kind(), kind);
        }
        assert!("bogus".parse::<ModelKind>().is_err());
    }

    #[test]
    fn trait_objects_enumerate_and_describe() {
        let c = suite::s27();
        for kind in ModelKind::ALL {
            let model = kind.model();
            let faults: Vec<Fault> = model.enumerate(&c, &FaultUniverse::default()).collect();
            assert!(!faults.is_empty());
            assert!(faults.iter().all(|&f| model.owns(f)));
            let text = model.describe(faults[0], &c);
            assert!(!text.is_empty());
            let classes = model.collapse(&c, &faults);
            assert_eq!(classes.class_of.len(), faults.len());
            assert!(classes.representatives.len() <= faults.len());
        }
    }
}
