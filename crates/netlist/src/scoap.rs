//! SCOAP-style testability measures.
//!
//! Both test generators need an ordering heuristic when several fanins could
//! justify an objective. We compute the classic Goldstein SCOAP measures on
//! the combinational block, treating flip-flop outputs as inputs with an
//! extra *sequential weight* so that justifying through state bits is
//! considered more expensive than justifying through primary inputs — which
//! matches the intuition (and the paper's experience) that state values must
//! ultimately be produced by a synchronizing sequence.

use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;

/// Per-net SCOAP measures.
///
/// `cc0\[n\]` / `cc1\[n\]` estimate the effort to set net `n` to 0 / 1;
/// `co\[n\]` estimates the effort to observe net `n` at a PO or PPO.
/// Smaller is easier.
#[derive(Debug, Clone)]
pub struct Testability {
    /// 0-controllability per node.
    pub cc0: Vec<u32>,
    /// 1-controllability per node.
    pub cc1: Vec<u32>,
    /// Observability per node.
    pub co: Vec<u32>,
}

/// Cost assigned to controlling a primary input.
pub const PI_COST: u32 = 1;
/// Extra cost assigned to controlling a flip-flop output (PPI), reflecting
/// that a synchronizing sequence must establish it.
pub const PPI_COST: u32 = 8;
/// Saturation bound to keep measures finite on reconvergent circuits.
const CAP: u32 = 1 << 24;

impl Testability {
    /// Computes SCOAP measures for `circuit`.
    ///
    /// # Example
    ///
    /// ```
    /// use gdf_netlist::{scoap::Testability, suite};
    ///
    /// let c = suite::s27();
    /// let t = Testability::compute(&c);
    /// let pi = c.inputs()[0];
    /// assert!(t.cc0[pi.index()] <= t.cc0[c.dffs()[0].index()]);
    /// ```
    pub fn compute(circuit: &Circuit) -> Self {
        let n = circuit.num_nodes();
        let mut cc0 = vec![CAP; n];
        let mut cc1 = vec![CAP; n];
        for &pi in circuit.inputs() {
            cc0[pi.index()] = PI_COST;
            cc1[pi.index()] = PI_COST;
        }
        for &ff in circuit.dffs() {
            cc0[ff.index()] = PPI_COST;
            cc1[ff.index()] = PPI_COST;
        }
        for &gate in circuit.topo_order() {
            let node = circuit.node(gate);
            let fanin = node.fanin();
            let (c0, c1) = gate_controllability(node.kind(), fanin, &cc0, &cc1);
            cc0[gate.index()] = c0.min(CAP);
            cc1[gate.index()] = c1.min(CAP);
        }

        let mut co = vec![CAP; n];
        for (idx, node) in circuit.nodes().iter().enumerate() {
            if node.is_output() {
                co[idx] = 0;
            }
        }
        for &ff in circuit.dffs() {
            let d = circuit.ppo_of_dff(ff);
            // Observing a PPO costs the sequential weight: the effect still
            // has to be driven from the state bit to a real PO.
            co[d.index()] = co[d.index()].min(PPI_COST);
        }
        for &gate in circuit.topo_order().iter().rev() {
            let node = circuit.node(gate);
            let out_co = co[gate.index()];
            if out_co == CAP {
                continue;
            }
            for (pin, &fi) in node.fanin().iter().enumerate() {
                let side_cost: u32 = node
                    .fanin()
                    .iter()
                    .enumerate()
                    .filter(|&(p, _)| p != pin)
                    .map(|(_, &other)| match node.kind().noncontrolling_value() {
                        Some(true) => cc1[other.index()],
                        Some(false) => cc0[other.index()],
                        // Parity/unate gates: to propagate, side inputs just
                        // need *some* value; take the cheaper one.
                        None => cc0[other.index()].min(cc1[other.index()]),
                    })
                    .fold(0u32, |a, b| a.saturating_add(b));
                let through = out_co.saturating_add(side_cost).saturating_add(1);
                if through < co[fi.index()] {
                    co[fi.index()] = through;
                }
            }
        }
        Testability { cc0, cc1, co }
    }

    /// Effort to set node `id` to value `v`.
    pub fn controllability(&self, id: NodeId, v: bool) -> u32 {
        if v {
            self.cc1[id.index()]
        } else {
            self.cc0[id.index()]
        }
    }

    /// Among `candidates`, the one whose value-`v` controllability is
    /// smallest (easiest to justify). Returns `None` on an empty slice.
    pub fn easiest_to_control(&self, candidates: &[NodeId], v: bool) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .min_by_key(|&id| self.controllability(id, v))
    }

    /// Among `candidates`, the one that is hardest to control to `v` —
    /// classic heuristic for picking which input to backtrace first.
    pub fn hardest_to_control(&self, candidates: &[NodeId], v: bool) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .max_by_key(|&id| self.controllability(id, v))
    }
}

fn gate_controllability(kind: GateKind, fanin: &[NodeId], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let f0 = |id: NodeId| cc0[id.index()];
    let f1 = |id: NodeId| cc1[id.index()];
    let sum0: u32 = fanin
        .iter()
        .map(|&f| f0(f))
        .fold(0, |a, b| a.saturating_add(b));
    let sum1: u32 = fanin
        .iter()
        .map(|&f| f1(f))
        .fold(0, |a, b| a.saturating_add(b));
    let min0 = fanin.iter().map(|&f| f0(f)).min().unwrap_or(CAP);
    let min1 = fanin.iter().map(|&f| f1(f)).min().unwrap_or(CAP);
    match kind {
        GateKind::Buf => (
            f0(fanin[0]).saturating_add(1),
            f1(fanin[0]).saturating_add(1),
        ),
        GateKind::Not => (
            f1(fanin[0]).saturating_add(1),
            f0(fanin[0]).saturating_add(1),
        ),
        GateKind::And => (min0.saturating_add(1), sum1.saturating_add(1)),
        GateKind::Nand => (sum1.saturating_add(1), min0.saturating_add(1)),
        GateKind::Or => (sum0.saturating_add(1), min1.saturating_add(1)),
        GateKind::Nor => (min1.saturating_add(1), sum0.saturating_add(1)),
        GateKind::Xor | GateKind::Xnor => {
            // Cheapest even/odd-parity assignment; exact for 2 inputs, a
            // reasonable bound for wider parity gates.
            let even = xor_parity_cost(fanin, cc0, cc1, false);
            let odd = xor_parity_cost(fanin, cc0, cc1, true);
            if kind == GateKind::Xor {
                (even.saturating_add(1), odd.saturating_add(1))
            } else {
                (odd.saturating_add(1), even.saturating_add(1))
            }
        }
        GateKind::Input | GateKind::Dff => unreachable!("sources handled by caller"),
    }
}

fn xor_parity_cost(fanin: &[NodeId], cc0: &[u32], cc1: &[u32], odd: bool) -> u32 {
    // Greedy: start from the all-zeros assignment (even parity) and, if the
    // required parity differs, flip the input with the cheapest delta.
    let base: u32 = fanin
        .iter()
        .map(|&f| cc0[f.index()])
        .fold(0, |a, b| a.saturating_add(b));
    if !odd {
        // Even parity: all zeros, or flip two inputs — all-zeros is a sound
        // lower-cost proxy.
        base
    } else {
        let best_delta = fanin
            .iter()
            .map(|&f| cc1[f.index()].saturating_sub(cc0[f.index()]))
            .min()
            .unwrap_or(0);
        let cheapest_flip = fanin
            .iter()
            .map(|&f| {
                base.saturating_sub(cc0[f.index()])
                    .saturating_add(cc1[f.index()])
            })
            .min()
            .unwrap_or(base);
        cheapest_flip.max(base.saturating_add(best_delta).saturating_sub(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    fn chain() -> Circuit {
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a");
        b.add_input("b");
        b.add_input("c");
        b.add_gate("g1", GateKind::And, &["a", "b"]);
        b.add_gate("g2", GateKind::And, &["g1", "c"]);
        b.mark_output("g2");
        b.build().unwrap()
    }

    #[test]
    fn and_chain_controllability_grows() {
        let c = chain();
        let t = Testability::compute(&c);
        let g1 = c.node_by_name("g1").unwrap();
        let g2 = c.node_by_name("g2").unwrap();
        // Setting an AND output to 1 needs all inputs at 1: cost grows with
        // depth.
        assert!(t.cc1[g2.index()] > t.cc1[g1.index()]);
        // Setting an AND output to 0 needs only one input: stays cheap.
        assert!(t.cc0[g2.index()] <= t.cc0[g1.index()] + 2);
    }

    #[test]
    fn observability_decreases_toward_outputs() {
        let c = chain();
        let t = Testability::compute(&c);
        let g2 = c.node_by_name("g2").unwrap();
        let a = c.node_by_name("a").unwrap();
        assert_eq!(t.co[g2.index()], 0);
        assert!(t.co[a.index()] > 0);
    }

    #[test]
    fn ppi_more_expensive_than_pi() {
        let mut b = CircuitBuilder::new("seq");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::And, &["a", "q"]);
        b.mark_output("d");
        let c = b.build().unwrap();
        let t = Testability::compute(&c);
        let a = c.node_by_name("a").unwrap();
        let q = c.node_by_name("q").unwrap();
        assert!(t.cc1[q.index()] > t.cc1[a.index()]);
    }

    #[test]
    fn easiest_and_hardest_selectors() {
        let c = chain();
        let t = Testability::compute(&c);
        let a = c.node_by_name("a").unwrap();
        let g1 = c.node_by_name("g1").unwrap();
        assert_eq!(t.easiest_to_control(&[a, g1], true), Some(a));
        assert_eq!(t.hardest_to_control(&[a, g1], true), Some(g1));
        assert_eq!(t.easiest_to_control(&[], true), None);
    }

    #[test]
    fn xor_controllabilities_finite() {
        let mut b = CircuitBuilder::new("x");
        b.add_input("a");
        b.add_input("b");
        b.add_gate("z", GateKind::Xor, &["a", "b"]);
        b.mark_output("z");
        let c = b.build().unwrap();
        let t = Testability::compute(&c);
        let z = c.node_by_name("z").unwrap();
        assert!(t.cc0[z.index()] < CAP);
        assert!(t.cc1[z.index()] < CAP);
    }
}
