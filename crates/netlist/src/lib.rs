//! Gate-level netlist substrate for the gate-delay-fault ATPG system.
//!
//! This crate provides everything the test generators need to know about a
//! synchronous sequential circuit:
//!
//! * [`Circuit`] — an arena-based gate-level netlist with primary inputs
//!   (PIs), primary outputs (POs) and D flip-flops whose outputs act as
//!   *pseudo primary inputs* (PPIs) and whose data inputs act as *pseudo
//!   primary outputs* (PPOs), exactly as in the finite-state-machine model of
//!   Figure 1 of the paper.
//! * [`parser`] / [`writer`] — a reader and writer for the ISCAS'89
//!   `.bench` netlist format (no mature netlist-parsing crates exist, so this
//!   is written from scratch).
//! * [`fault`] — the fault universe: a slow-to-rise and a slow-to-fall
//!   delay fault on *every gate output and every fanout branch* (Section 3
//!   of the paper), classic single stuck-at faults for the SEMILET
//!   substrate, and transition (gross-delay) faults.
//! * [`model`] — the pluggable [`model::FaultModel`] trait behind those
//!   universes: lazy deterministic enumeration ([`model::FaultSet`]),
//!   equivalence collapsing and signal-name description, one
//!   implementation per model.
//! * [`scoap`] — SCOAP-style controllability/observability measures used to
//!   guide backtracing in both test generators.
//! * [`generator`] and [`suite`] — the benchmark suite: the exact `s27`
//!   netlist plus a deterministic synthetic family matching the published
//!   profiles of the remaining ISCAS'89 circuits used in Table 3.
//!
//! # Example
//!
//! ```
//! use gdf_netlist::suite;
//!
//! let c = suite::s27();
//! assert_eq!(c.num_inputs(), 4);
//! assert_eq!(c.num_dffs(), 3);
//! assert_eq!(c.num_outputs(), 1);
//! ```

pub mod circuit;
pub mod collapse;
pub mod fault;
pub mod gate;
pub mod generator;
pub mod model;
pub mod parser;
pub mod scoap;
pub mod suite;
pub mod writer;

pub use circuit::{BuildError, Circuit, CircuitBuilder, CircuitStats, Node, NodeId};
pub use collapse::{
    collapse_delay_faults, collapse_faults, Classes, CollapsedFaults, FaultClasses,
};
pub use fault::{
    DelayFault, DelayFaultKind, Fault, FaultSite, FaultUniverse, StuckAtKind, StuckFault,
    TransitionFault,
};
pub use gate::GateKind;
pub use model::{DelayModel, FaultModel, FaultSet, ModelKind, StuckModel, TransitionModel};
pub use parser::{parse_bench, ParseBenchError};
pub use writer::to_bench;
