//! The arena-based circuit representation and its builder.
//!
//! A [`Circuit`] models a synchronous sequential circuit as in Figure 1 of
//! the paper: a combinational block fed by primary inputs (PIs) and the
//! outputs of D flip-flops (pseudo primary inputs, PPIs), driving primary
//! outputs (POs) and the D inputs of the flip-flops (pseudo primary outputs,
//! PPOs). A single global clock is implicit; the ATPG decides per time frame
//! whether that clock tick is "slow" or "fast".

use crate::gate::GateKind;
use std::collections::HashMap;
use std::fmt;

/// Index of a node (gate, primary input or flip-flop) inside a [`Circuit`].
///
/// Node ids are dense and stable: they index directly into the circuit's
/// node arena, so per-node side tables can be plain vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single node: a primary input, a D flip-flop, or a combinational gate.
///
/// The node's *output net* is identified with the node itself; fanout
/// branches are `(sink, pin)` pairs recorded in [`Node::fanout`].
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    kind: GateKind,
    fanin: Vec<NodeId>,
    fanout: Vec<(NodeId, u8)>,
    is_output: bool,
}

impl Node {
    /// The signal name of this node's output net.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Fanin nets, in pin order. For a `Dff`, `fanin()[0]` is the D net
    /// (the pseudo primary output the flip-flop latches).
    pub fn fanin(&self) -> &[NodeId] {
        &self.fanin
    }

    /// Fanout branches as `(sink node, input pin of the sink)` pairs.
    pub fn fanout(&self) -> &[(NodeId, u8)] {
        &self.fanout
    }

    /// Whether this node's output net is a primary output.
    pub fn is_output(&self) -> bool {
        self.is_output
    }
}

/// Summary statistics of a circuit, used for reporting and by the synthetic
/// benchmark generator to verify profile conformance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of D flip-flops.
    pub num_dffs: usize,
    /// Number of combinational gates (everything except PIs and DFFs).
    pub num_gates: usize,
    /// Maximum combinational level (depth of the combinational block).
    pub max_level: u32,
    /// Number of stems with more than one fanout branch.
    pub num_fanout_stems: usize,
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PI, {} PO, {} DFF, {} gates, depth {}, {} fanout stems",
            self.num_inputs,
            self.num_outputs,
            self.num_dffs,
            self.num_gates,
            self.max_level,
            self.num_fanout_stems
        )
    }
}

/// A validated, levelized gate-level netlist.
///
/// Construct one with [`CircuitBuilder`] or [`crate::parser::parse_bench`].
///
/// # Example
///
/// ```
/// use gdf_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("toy");
/// b.add_input("a");
/// b.add_input("b");
/// b.add_dff("q", "d");
/// b.add_gate("d", GateKind::Nand, &["a", "q"]);
/// b.add_gate("y", GateKind::Nor, &["b", "d"]);
/// b.mark_output("y");
/// let c = b.build().expect("valid circuit");
/// assert_eq!(c.num_gates(), 2);
/// assert_eq!(c.ppo_of_dff(c.dffs()[0]), c.node_by_name("d").unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
    by_name: HashMap<String, NodeId>,
    /// Combinational level; 0 for PIs and DFF outputs.
    level: Vec<u32>,
    /// Combinational gates in topological (level) order.
    topo: Vec<NodeId>,
    max_level: u32,
    /// Pseudo primary outputs, cached in flip-flop declaration order.
    ppos: Vec<NodeId>,
    /// Flattened fanin arena: the fanins of `topo[k]` live at
    /// `fanin_arena[fanin_offsets[k]..fanin_offsets[k + 1]]`. One
    /// contiguous allocation replaces the per-gate `Vec` rebuild in every
    /// simulator hot loop.
    fanin_arena: Vec<NodeId>,
    fanin_offsets: Vec<u32>,
    /// Gate kind of `topo[k]`, colocated for cache-friendly sweeps.
    topo_kinds: Vec<GateKind>,
    /// Packed transitive-fanout cones: node `i`'s cone occupies
    /// `cone_words[i * cone_stride..][..cone_stride]`, one bit per node.
    /// Computed lazily on first cone query (the table is O(n²/8) bytes —
    /// building it eagerly would tax every `Circuit` that never traces a
    /// fault cone).
    cone_words: std::sync::OnceLock<Vec<u64>>,
    cone_stride: usize,
}

impl Circuit {
    /// The circuit name (e.g. `"s27"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total node count (PIs + DFFs + gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flop nodes in declaration order. The node's output is the PPI;
    /// its single fanin is the PPO.
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of flip-flops (state bits).
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of combinational gates.
    pub fn num_gates(&self) -> usize {
        self.topo.len()
    }

    /// The pseudo-primary-output net latched by flip-flop `dff`.
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a flip-flop node.
    pub fn ppo_of_dff(&self, dff: NodeId) -> NodeId {
        let node = self.node(dff);
        assert_eq!(node.kind(), GateKind::Dff, "{dff} is not a DFF");
        node.fanin()[0]
    }

    /// All pseudo primary outputs, in flip-flop declaration order.
    ///
    /// Cached at build time: calling this in a per-sequence loop is free.
    /// (Before 0.3 this allocated a fresh `Vec` per call.)
    pub fn ppos(&self) -> &[NodeId] {
        &self.ppos
    }

    /// Looks up a node by signal name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Combinational level of a node's output net (0 for PIs and PPIs).
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// Depth of the combinational block.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Combinational gates in topological order (sources excluded); a forward
    /// sweep in this order evaluates every gate after its fanins.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// The fanins of the `k`-th gate of [`Circuit::topo_order`], served
    /// from the flattened levelized arena (no per-gate allocation).
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_gates()`.
    pub fn topo_fanins(&self, k: usize) -> &[NodeId] {
        let lo = self.fanin_offsets[k] as usize;
        let hi = self.fanin_offsets[k + 1] as usize;
        &self.fanin_arena[lo..hi]
    }

    /// Iterates the combinational block in topological order as
    /// `(gate id, kind, fanins)` triples — the allocation-free shape every
    /// simulator sweep consumes.
    pub fn gates_levelized(&self) -> impl Iterator<Item = (NodeId, GateKind, &[NodeId])> + '_ {
        self.topo
            .iter()
            .zip(&self.topo_kinds)
            .enumerate()
            .map(move |(k, (&id, &kind))| (id, kind, self.topo_fanins(k)))
    }

    /// Whether `id` is a source of the combinational block (PI or DFF
    /// output).
    pub fn is_source(&self, id: NodeId) -> bool {
        !self.node(id).kind().is_combinational()
    }

    /// Whether `id` drives an observation point: a PO net or a PPO net.
    pub fn is_observable_net(&self, id: NodeId) -> bool {
        self.node(id).is_output()
            || self
                .node(id)
                .fanout()
                .iter()
                .any(|&(s, _)| self.node(s).kind() == GateKind::Dff)
    }

    /// Summary statistics.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            num_inputs: self.num_inputs(),
            num_outputs: self.num_outputs(),
            num_dffs: self.num_dffs(),
            num_gates: self.num_gates(),
            max_level: self.max_level,
            num_fanout_stems: self.nodes.iter().filter(|n| n.fanout().len() > 1).count(),
        }
    }

    /// The transitive fanout cone of `seed` (including `seed` itself),
    /// restricted to the combinational block (stops at DFFs and POs).
    ///
    /// Served from the cone bitsets computed once per circuit, on first
    /// cone query (before 0.3 every call ran a DFS and allocated a fresh
    /// `Vec<bool>`). For allocation-free queries use
    /// [`Circuit::cone_contains`] or [`Circuit::cone_words`].
    pub fn output_cone(&self, seed: NodeId) -> Vec<bool> {
        let words = self.cone_words(seed);
        (0..self.nodes.len())
            .map(|i| words[i / 64] >> (i % 64) & 1 == 1)
            .collect()
    }

    /// Whether `node` lies in the transitive fanout cone of `seed`
    /// (including `seed == node`).
    pub fn cone_contains(&self, seed: NodeId, node: NodeId) -> bool {
        let i = node.index();
        self.cone_words(seed)[i / 64] >> (i % 64) & 1 == 1
    }

    /// The packed cone bitset of `seed`: bit `i` of word `i / 64` is set
    /// iff node `i` is in the cone. All cones share one word stride
    /// ([`Circuit::cone_stride`]), so word-level unions across seeds are
    /// plain slice zips. The whole-circuit cone table is built on the
    /// first query and cached for the circuit's lifetime.
    pub fn cone_words(&self, seed: NodeId) -> &[u64] {
        let words = self.cone_words.get_or_init(|| self.compute_cone_words());
        let s = seed.index() * self.cone_stride;
        &words[s..s + self.cone_stride]
    }

    /// Builds the full cone table: one pass in reverse topological order —
    /// a node's cone is itself plus the union of its combinational sinks'
    /// cones (cones stop at DFFs).
    fn compute_cone_words(&self) -> Vec<u64> {
        let n = self.nodes.len();
        let stride = self.cone_stride;
        let mut cone_words = vec![0u64; n * stride];
        // Reversed below: gates in reverse topo order first, sources
        // (whose fanouts are gates) last.
        let mut order: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| !node.kind.is_combinational())
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        order.extend_from_slice(&self.topo);
        for &id in order.iter().rev() {
            let i = id.index();
            cone_words[i * stride + i / 64] |= 1 << (i % 64);
            for s in 0..self.nodes[i].fanout.len() {
                let sink = self.nodes[i].fanout[s].0.index();
                if self.nodes[sink].kind == GateKind::Dff {
                    continue;
                }
                let (dst, src) = if i < sink {
                    let (a, b) = cone_words.split_at_mut(sink * stride);
                    (&mut a[i * stride..(i + 1) * stride], &b[..stride])
                } else {
                    let (a, b) = cone_words.split_at_mut(i * stride);
                    (&mut b[..stride], &a[sink * stride..(sink + 1) * stride])
                };
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d |= s;
                }
            }
        }
        cone_words
    }

    /// Number of u64 words per cone bitset (`ceil(num_nodes / 64)`).
    pub fn cone_stride(&self) -> usize {
        self.cone_stride
    }
}

/// Errors reported by [`CircuitBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A signal name was defined more than once.
    DuplicateDefinition(String),
    /// A gate references a signal that is never defined.
    UnknownSignal {
        /// The gate whose fanin is undefined.
        gate: String,
        /// The undefined fanin signal.
        signal: String,
    },
    /// A signal was declared `OUTPUT(...)` but never defined.
    UndefinedOutput(String),
    /// The combinational block contains a cycle (a feedback loop that does
    /// not pass through a flip-flop).
    CombinationalCycle(String),
    /// A gate has an invalid number of inputs for its kind.
    BadArity {
        /// The offending gate.
        gate: String,
        /// Its kind.
        kind: GateKind,
        /// The number of fanins supplied.
        got: usize,
    },
    /// The circuit has no nodes.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateDefinition(name) => {
                write!(f, "signal `{name}` is defined more than once")
            }
            BuildError::UnknownSignal { gate, signal } => {
                write!(f, "gate `{gate}` references undefined signal `{signal}`")
            }
            BuildError::UndefinedOutput(name) => {
                write!(f, "output `{name}` is never defined")
            }
            BuildError::CombinationalCycle(name) => {
                write!(f, "combinational cycle through signal `{name}`")
            }
            BuildError::BadArity { gate, kind, got } => {
                write!(
                    f,
                    "gate `{gate}` of kind {kind} has invalid fanin count {got}"
                )
            }
            BuildError::Empty => write!(f, "circuit has no nodes"),
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Debug, Clone)]
struct PendingNode {
    name: String,
    kind: GateKind,
    fanin_names: Vec<String>,
}

/// Incremental, name-based circuit constructor supporting forward
/// references, as required by the `.bench` format.
///
/// Call [`CircuitBuilder::build`] to resolve names, check arities, verify
/// acyclicity of the combinational block and levelize the result.
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    pending: Vec<PendingNode>,
    output_names: Vec<String>,
}

impl CircuitBuilder {
    /// Creates an empty builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            pending: Vec::new(),
            output_names: Vec::new(),
        }
    }

    /// Declares a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> &mut Self {
        self.pending.push(PendingNode {
            name: name.into(),
            kind: GateKind::Input,
            fanin_names: Vec::new(),
        });
        self
    }

    /// Declares a D flip-flop whose output net is `q` and whose D input is
    /// the (possibly not yet defined) signal `d`.
    pub fn add_dff(&mut self, q: impl Into<String>, d: impl Into<String>) -> &mut Self {
        self.pending.push(PendingNode {
            name: q.into(),
            kind: GateKind::Dff,
            fanin_names: vec![d.into()],
        });
        self
    }

    /// Declares a combinational gate driving net `name`.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanin: &[&str],
    ) -> &mut Self {
        self.pending.push(PendingNode {
            name: name.into(),
            kind,
            fanin_names: fanin.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, name: impl Into<String>) -> &mut Self {
        self.output_names.push(name.into());
        self
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Resolves names and produces a validated [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if a name is duplicated or undefined, a gate
    /// has an invalid arity, the circuit is empty, or the combinational block
    /// is cyclic.
    pub fn build(&self) -> Result<Circuit, BuildError> {
        if self.pending.is_empty() {
            return Err(BuildError::Empty);
        }
        let mut by_name: HashMap<String, NodeId> = HashMap::with_capacity(self.pending.len());
        for (i, p) in self.pending.iter().enumerate() {
            if by_name.insert(p.name.clone(), NodeId(i as u32)).is_some() {
                return Err(BuildError::DuplicateDefinition(p.name.clone()));
            }
        }

        let mut nodes: Vec<Node> = Vec::with_capacity(self.pending.len());
        for p in &self.pending {
            let (min, max) = p.kind.arity_range();
            if p.fanin_names.len() < min || p.fanin_names.len() > max {
                return Err(BuildError::BadArity {
                    gate: p.name.clone(),
                    kind: p.kind,
                    got: p.fanin_names.len(),
                });
            }
            let mut fanin = Vec::with_capacity(p.fanin_names.len());
            for f in &p.fanin_names {
                let id = by_name
                    .get(f)
                    .copied()
                    .ok_or_else(|| BuildError::UnknownSignal {
                        gate: p.name.clone(),
                        signal: f.clone(),
                    })?;
                fanin.push(id);
            }
            nodes.push(Node {
                name: p.name.clone(),
                kind: p.kind,
                fanin,
                fanout: Vec::new(),
                is_output: false,
            });
        }

        let mut outputs = Vec::with_capacity(self.output_names.len());
        for o in &self.output_names {
            let id = by_name
                .get(o)
                .copied()
                .ok_or_else(|| BuildError::UndefinedOutput(o.clone()))?;
            if !nodes[id.index()].is_output {
                nodes[id.index()].is_output = true;
                outputs.push(id);
            }
        }

        // Fanout lists.
        let fanin_lists: Vec<Vec<NodeId>> = nodes.iter().map(|n| n.fanin.clone()).collect();
        for (sink_idx, fanin) in fanin_lists.iter().enumerate() {
            for (pin, &src) in fanin.iter().enumerate() {
                nodes[src.index()]
                    .fanout
                    .push((NodeId(sink_idx as u32), pin as u8));
            }
        }

        // Levelize: Kahn's algorithm over the combinational block. Sources
        // are PIs and DFF outputs; a DFF *consumes* its D net but its output
        // is level 0, so DFF nodes never appear in the worklist as sinks.
        let n = nodes.len();
        let mut level = vec![0u32; n];
        let mut remaining = vec![0usize; n];
        let mut ready: Vec<NodeId> = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            if node.kind.is_combinational() {
                remaining[i] = node.fanin.len();
                if node.fanin.is_empty() {
                    ready.push(NodeId(i as u32));
                }
            }
        }
        for (i, node) in nodes.iter().enumerate() {
            if !node.kind.is_combinational() {
                for &(sink, _) in &node.fanout {
                    if nodes[sink.index()].kind.is_combinational() {
                        remaining[sink.index()] -= 1;
                        if remaining[sink.index()] == 0 {
                            ready.push(sink);
                        }
                    }
                }
                let _ = i;
            }
        }
        // Deduplicate multi-edges: a gate fed twice by the same source had its
        // counter decremented twice, which is correct because `fanout`
        // contains one entry per pin.
        let mut topo: Vec<NodeId> = Vec::new();
        let mut head = 0;
        while head < ready.len() {
            let id = ready[head];
            head += 1;
            let lv = nodes[id.index()]
                .fanin
                .iter()
                .map(|f| level[f.index()])
                .max()
                .unwrap_or(0)
                + 1;
            level[id.index()] = lv;
            topo.push(id);
            for &(sink, _) in &nodes[id.index()].fanout {
                if nodes[sink.index()].kind.is_combinational() {
                    remaining[sink.index()] -= 1;
                    if remaining[sink.index()] == 0 {
                        ready.push(sink);
                    }
                }
            }
        }
        let scheduled = topo.len();
        let total_comb = nodes.iter().filter(|n| n.kind.is_combinational()).count();
        if scheduled != total_comb {
            let stuck = nodes
                .iter()
                .enumerate()
                .find(|(i, n)| n.kind.is_combinational() && remaining[*i] > 0)
                .map(|(_, n)| n.name.clone())
                .unwrap_or_default();
            return Err(BuildError::CombinationalCycle(stuck));
        }
        let max_level = level.iter().copied().max().unwrap_or(0);

        let inputs = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == GateKind::Input)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let dffs: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == GateKind::Dff)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let ppos = dffs.iter().map(|&d| nodes[d.index()].fanin[0]).collect();

        // Flattened levelized fanin arena: one contiguous run per topo
        // gate, so simulator sweeps never rebuild per-gate input Vecs.
        let mut fanin_offsets = Vec::with_capacity(topo.len() + 1);
        let mut fanin_arena =
            Vec::with_capacity(topo.iter().map(|g| nodes[g.index()].fanin.len()).sum());
        fanin_offsets.push(0u32);
        for &g in &topo {
            fanin_arena.extend_from_slice(&nodes[g.index()].fanin);
            fanin_offsets.push(fanin_arena.len() as u32);
        }
        let topo_kinds = topo.iter().map(|g| nodes[g.index()].kind).collect();
        let cone_stride = n.div_ceil(64);

        Ok(Circuit {
            name: self.name.clone(),
            nodes,
            inputs,
            outputs,
            dffs,
            by_name,
            level,
            topo,
            max_level,
            ppos,
            fanin_arena,
            fanin_offsets,
            topo_kinds,
            cone_words: std::sync::OnceLock::new(),
            cone_stride,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Circuit {
        let mut b = CircuitBuilder::new("toy");
        b.add_input("a");
        b.add_input("b");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::Nand, &["a", "q"]);
        b.add_gate("y", GateKind::Nor, &["b", "d"]);
        b.mark_output("y");
        b.build().unwrap()
    }

    #[test]
    fn build_toy() {
        let c = toy();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_outputs(), 1);
        let d = c.node_by_name("d").unwrap();
        let q = c.node_by_name("q").unwrap();
        assert_eq!(c.ppo_of_dff(q), d);
        assert_eq!(c.level(q), 0);
        assert_eq!(c.level(d), 1);
        assert_eq!(c.level(c.node_by_name("y").unwrap()), 2);
        assert_eq!(c.max_level(), 2);
    }

    #[test]
    fn fanout_pins_recorded() {
        let c = toy();
        let a = c.node_by_name("a").unwrap();
        let d = c.node_by_name("d").unwrap();
        assert_eq!(c.node(a).fanout(), &[(d, 0)]);
        // d feeds both the DFF (pin 0) and y (pin 1 of y).
        let q = c.node_by_name("q").unwrap();
        let y = c.node_by_name("y").unwrap();
        let mut fo = c.node(d).fanout().to_vec();
        fo.sort();
        let mut expect = vec![(q, 0u8), (y, 1u8)];
        expect.sort();
        assert_eq!(fo, expect);
    }

    #[test]
    fn observable_nets() {
        let c = toy();
        assert!(c.is_observable_net(c.node_by_name("y").unwrap()));
        assert!(c.is_observable_net(c.node_by_name("d").unwrap())); // feeds DFF
        assert!(!c.is_observable_net(c.node_by_name("a").unwrap()));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let mut b = CircuitBuilder::new("dup");
        b.add_input("a");
        b.add_input("a");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateDefinition("a".into())
        );
    }

    #[test]
    fn unknown_signal_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.add_gate("g", GateKind::And, &["nope", "nada"]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::UnknownSignal { .. }
        ));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = CircuitBuilder::new("cyc");
        b.add_input("a");
        b.add_gate("x", GateKind::And, &["a", "y"]);
        b.add_gate("y", GateKind::Or, &["x", "a"]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::CombinationalCycle(_)
        ));
    }

    #[test]
    fn feedback_through_dff_is_fine() {
        let mut b = CircuitBuilder::new("loop");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::Xor, &["a", "q"]);
        b.mark_output("d");
        let c = b.build().unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = CircuitBuilder::new("arity");
        b.add_input("a");
        b.add_input("b");
        b.add_gate("g", GateKind::Not, &["a", "b"]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::BadArity { .. }
        ));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            CircuitBuilder::new("e").build().unwrap_err(),
            BuildError::Empty
        );
    }

    #[test]
    fn undefined_output_rejected() {
        let mut b = CircuitBuilder::new("o");
        b.add_input("a");
        b.mark_output("ghost");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UndefinedOutput("ghost".into())
        );
    }

    #[test]
    fn topo_order_respects_fanin() {
        let c = toy();
        let pos: HashMap<NodeId, usize> = c
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for &id in c.topo_order() {
            for &f in c.node(id).fanin() {
                if c.node(f).kind().is_combinational() {
                    assert!(pos[&f] < pos[&id]);
                }
            }
        }
    }

    #[test]
    fn output_cone_stops_at_dff() {
        let c = toy();
        let d = c.node_by_name("d").unwrap();
        let cone = c.output_cone(d);
        assert!(cone[d.index()]);
        assert!(cone[c.node_by_name("y").unwrap().index()]);
        assert!(!cone[c.node_by_name("q").unwrap().index()]);
    }

    #[test]
    fn stats_display() {
        let s = toy().stats();
        assert_eq!(s.num_gates, 2);
        let txt = s.to_string();
        assert!(txt.contains("2 PI"));
    }

    #[test]
    fn error_display_nonempty() {
        let e = BuildError::DuplicateDefinition("x".into());
        assert!(!e.to_string().is_empty());
    }
}
