//! Deterministic synthetic sequential-circuit generator.
//!
//! The original ISCAS'89 netlists were distributed on tape at ISCAS 1989 and
//! are not reproducible from the paper itself (only `s27` is printed in full
//! in the literature; see [`crate::suite::s27`]). To exercise the ATPG on
//! circuits of the same scale, this module generates *profile-matched*
//! synthetic circuits: the PI/PO/FF/gate counts follow the published
//! statistics of each benchmark, the gate-type mix follows the typical
//! ISCAS'89 distribution (inverter-heavy, NAND/NOR dominated, no XOR), and
//! fanin selection is recency-biased so that realistic logic depth and
//! reconvergent fanout emerge. Generation is fully deterministic in the
//! profile seed.
//!
//! Also provided are small *structured* generators (shift register, modulo
//! counter) used by the examples and tests, where a known structure makes
//! expected ATPG behaviour easy to reason about.

use crate::circuit::{Circuit, CircuitBuilder};
use crate::gate::GateKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Target shape of a synthetic circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitProfile {
    /// Circuit name (the generated circuit is named `<name>`).
    pub name: String,
    /// Number of primary inputs.
    pub num_pi: usize,
    /// Number of primary outputs.
    pub num_po: usize,
    /// Number of D flip-flops.
    pub num_dff: usize,
    /// Number of combinational gates.
    pub num_gates: usize,
    /// RNG seed; two generations with the same profile are identical.
    pub seed: u64,
}

impl CircuitProfile {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        num_pi: usize,
        num_po: usize,
        num_dff: usize,
        num_gates: usize,
        seed: u64,
    ) -> Self {
        CircuitProfile {
            name: name.into(),
            num_pi,
            num_po,
            num_dff,
            num_gates,
            seed,
        }
    }
}

/// Weighted ISCAS'89-like gate mix (kept for documentation/reference; the
/// generator now balances kinds by signal probability instead).
#[allow(dead_code)]
const GATE_MIX: &[(GateKind, u32)] = &[
    (GateKind::Not, 22),
    (GateKind::Buf, 4),
    (GateKind::Nand, 26),
    (GateKind::And, 18),
    (GateKind::Nor, 16),
    (GateKind::Or, 14),
];

/// Fraction of flip-flops that get an explicit load/hold update structure
/// (`d = (load ∧ data) ∨ (¬load ∧ q)`), as real sequential benchmarks do —
/// this is what makes their state controllable and their latched fault
/// effects propagatable.
const HOLD_FRACTION: f64 = 0.8;

/// Generates a synthetic sequential circuit matching `profile`.
///
/// Guarantees:
/// * exactly `num_pi` PIs, `num_dff` DFFs and `num_gates` gates;
/// * at least `num_po` POs (a handful of extra POs may be added to keep
///   every gate observable — dangling logic would distort fault statistics);
/// * the combinational block is acyclic (sequential feedback only through
///   flip-flops);
/// * deterministic in `profile.seed`.
///
/// # Panics
///
/// Panics if the profile has no inputs or no gates.
///
/// # Example
///
/// ```
/// use gdf_netlist::generator::{generate, CircuitProfile};
///
/// let p = CircuitProfile::new("demo", 4, 2, 3, 30, 42);
/// let c = generate(&p);
/// assert_eq!(c.num_inputs(), 4);
/// assert_eq!(c.num_dffs(), 3);
/// assert_eq!(c.num_gates(), 30);
/// assert!(c.num_outputs() >= 2);
/// ```
pub fn generate(profile: &CircuitProfile) -> Circuit {
    assert!(profile.num_pi > 0, "profile needs at least one PI");
    assert!(profile.num_gates > 0, "profile needs at least one gate");
    let mut rng = StdRng::seed_from_u64(profile.seed);

    let n_src = profile.num_pi + profile.num_dff;
    let n_sig = n_src + profile.num_gates;
    // Reserve gates for load/hold state-update structures: one shared
    // inverter plus three gates per held flip-flop, budget permitting.
    let mut held: Vec<usize> = Vec::new();
    let want_held = ((profile.num_dff as f64) * HOLD_FRACTION).round() as usize;
    let hold_budget = if profile.num_gates > 8 && profile.num_dff > 0 {
        let affordable = (profile.num_gates.saturating_sub(4)) / 6; // keep ≥ half random
        want_held.min(affordable)
    } else {
        0
    };
    for i in 0..hold_budget {
        held.push(i * profile.num_dff / hold_budget.max(1));
    }
    held.dedup();
    let hold_gates = if held.is_empty() {
        0
    } else {
        1 + 3 * held.len()
    };
    // A synchronous reset (one AND per flip-flop plus a shared inverter),
    // budget permitting: like most real controllers, and without it almost
    // nothing is synchronizable from the unknown power-up state.
    let reset_gates = if profile.num_dff > 0
        && profile.num_gates > hold_gates + profile.num_dff + 1 + profile.num_dff
    {
        profile.num_dff + 1
    } else {
        0
    };
    let random_gates = profile.num_gates - hold_gates - reset_gates;

    // Plan: per gate, kind and fanin signal indices (all < its own index).
    let mut kinds: Vec<GateKind> = Vec::with_capacity(profile.num_gates);
    let mut fanins: Vec<Vec<usize>> = Vec::with_capacity(profile.num_gates);

    // Per-signal estimated probability of being 1 (independence
    // approximation). Picking the gate kind that keeps this near 0.5
    // prevents deep random logic from saturating to constants — real
    // benchmark logic stays active, and an ATPG run over half-constant
    // nets would measure nothing but redundancies.
    let mut prob: Vec<f64> = vec![0.5; n_src];
    for g in 0..random_gates {
        let sig_index = n_src + g;
        // Real ISCAS'89 circuits are dominated by 1–2 input gates.
        let r: f64 = rng.gen();
        let arity = if r < 0.24 {
            1
        } else if r < 0.82 {
            2
        } else if r < 0.95 {
            3
        } else {
            4
        };
        let mut fi: Vec<usize> = Vec::with_capacity(arity);
        let mut guard = 0;
        while fi.len() < arity && guard < 1000 {
            guard += 1;
            let cand = pick_source(&mut rng, sig_index);
            if !fi.contains(&cand) {
                fi.push(cand);
            }
        }
        if fi.is_empty() {
            fi.push(rng.gen_range(0..sig_index.max(1)));
        }
        let kind = if fi.len() == 1 {
            if rng.gen_bool(0.85) {
                GateKind::Not
            } else {
                GateKind::Buf
            }
        } else {
            // Choose among AND/NAND/OR/NOR, weighted toward keeping the
            // output probability near one half.
            let p_and: f64 = fi.iter().map(|&s| prob[s]).product();
            let p_or: f64 = 1.0 - fi.iter().map(|&s| 1.0 - prob[s]).product::<f64>();
            let cands = [
                (GateKind::And, p_and),
                (GateKind::Nand, 1.0 - p_and),
                (GateKind::Or, p_or),
                (GateKind::Nor, 1.0 - p_or),
            ];
            let weights: Vec<f64> = cands
                .iter()
                .map(|&(_, p)| (-((p - 0.5) * (p - 0.5)) / 0.08).exp() + 1e-3)
                .collect();
            let total: f64 = weights.iter().sum();
            let mut pick = rng.gen::<f64>() * total;
            let mut chosen = cands[0];
            for (c, w) in cands.iter().zip(&weights) {
                if pick < *w {
                    chosen = *c;
                    break;
                }
                pick -= *w;
            }
            chosen.0
        };
        let p_out = match kind {
            GateKind::Not => 1.0 - prob[fi[0]],
            GateKind::Buf => prob[fi[0]],
            GateKind::And => fi.iter().map(|&s| prob[s]).product(),
            GateKind::Nand => 1.0 - fi.iter().map(|&s| prob[s]).product::<f64>(),
            GateKind::Or => 1.0 - fi.iter().map(|&s| 1.0 - prob[s]).product::<f64>(),
            GateKind::Nor => fi.iter().map(|&s| 1.0 - prob[s]).product(),
            _ => 0.5,
        };
        prob.push(p_out);
        kinds.push(kind);
        fanins.push(fi);
    }
    // Hold structures below reference `prob` only implicitly; extend it so
    // indexes stay aligned for potential future use.
    while prob.len() < n_sig {
        prob.push(0.5);
    }

    // Load/hold structures after the random logic: for each held flip-flop
    // `d = (load ∧ data) ∨ (¬load ∧ q)` with a shared load inverter. The
    // load signal is the first PI, `data` a random logic signal.
    let mut hold_d: Vec<(usize, usize)> = Vec::new(); // (dff, d signal)
    if !held.is_empty() {
        let n_random = n_src + random_gates;
        let load = 0usize; // PI 0 doubles as the shared load control
        kinds.push(GateKind::Not);
        fanins.push(vec![load]);
        let nload = n_random;
        for (k, &dff) in held.iter().enumerate() {
            let data = rng
                .gen_range(n_src..n_random.max(n_src + 1))
                .min(n_random - 1);
            let q = profile.num_pi + dff;
            let a = n_random + 1 + 3 * k;
            kinds.push(GateKind::And);
            fanins.push(vec![load, data]);
            kinds.push(GateKind::And);
            fanins.push(vec![nload, q]);
            kinds.push(GateKind::Or);
            fanins.push(vec![a, a + 1]);
            hold_d.push((dff, a + 2));
        }
    }
    // DFF D inputs: held flip-flops use their hold structure, the rest
    // prefer distinct late random gates.
    let mut dff_d: Vec<usize> = Vec::with_capacity(profile.num_dff);
    for i in 0..profile.num_dff {
        if let Some(&(_, d)) = hold_d.iter().find(|&&(dff, _)| dff == i) {
            dff_d.push(d);
            continue;
        }
        let hi = n_src + random_gates;
        let lo = n_src + random_gates / 2;
        let cand = rng.gen_range(lo..hi.max(lo + 1)).min(hi - 1);
        dff_d.push(cand);
    }

    // Reset wrapping: d_i := d_i ∧ ¬rst, with the last PI as reset.
    if reset_gates > 0 {
        let rst = profile.num_pi - 1;
        let nrst = n_src + kinds.len();
        kinds.push(GateKind::Not);
        fanins.push(vec![rst]);
        for d in dff_d.iter_mut() {
            let wrapped = n_src + kinds.len();
            kinds.push(GateKind::And);
            fanins.push(vec![*d, nrst]);
            *d = wrapped;
        }
    }
    debug_assert_eq!(kinds.len(), profile.num_gates);

    // Usage counts so far.
    let mut used = vec![0usize; n_sig];
    for fi in &fanins {
        for &s in fi {
            used[s] += 1;
        }
    }
    for &d in &dff_d {
        used[d] += 1;
    }

    // POs: prefer unused gates (latest first), then random late gates.
    let mut pos: Vec<usize> = Vec::new();
    let mut unused_gates: Vec<usize> = (n_src..n_sig).filter(|&s| used[s] == 0).collect();
    unused_gates.reverse();
    for _ in 0..profile.num_po {
        if let Some(u) = unused_gates.pop() {
            pos.push(u);
            used[u] += 1;
        } else {
            let cand = rng.gen_range(n_src + profile.num_gates / 2..n_sig);
            if !pos.contains(&cand) {
                pos.push(cand);
                used[cand] += 1;
            }
        }
    }

    // Keep every remaining signal observable: attach unused signals as extra
    // fanins of later variable-arity gates, or as extra POs when no later
    // gate exists.
    #[allow(clippy::needless_range_loop)] // `used` is re-indexed while iterating
    for s in 0..n_sig {
        if used[s] > 0 || (s >= profile.num_pi && s < n_src) {
            continue;
        }
        // PIs must be used too; gates as well.
        let mut attached = false;
        let first_gate = s.max(n_src).saturating_sub(n_src) + 1;
        for g in first_gate..profile.num_gates {
            let sig_index = n_src + g;
            if sig_index <= s {
                continue;
            }
            let k = kinds[g];
            if matches!(k, GateKind::Not | GateKind::Buf) || fanins[g].len() >= 4 {
                continue;
            }
            if fanins[g].contains(&s) {
                continue;
            }
            fanins[g].push(s);
            used[s] += 1;
            attached = true;
            break;
        }
        if !attached {
            pos.push(s);
            used[s] += 1;
        }
    }

    // Emit through the builder.
    let mut b = CircuitBuilder::new(profile.name.clone());
    let sig_name = |s: usize| -> String {
        if s < profile.num_pi {
            format!("pi{s}")
        } else if s < n_src {
            format!("q{}", s - profile.num_pi)
        } else {
            format!("g{}", s - n_src)
        }
    };
    for i in 0..profile.num_pi {
        b.add_input(sig_name(i));
    }
    for (i, &d) in dff_d.iter().enumerate() {
        b.add_dff(format!("q{i}"), sig_name(d));
    }
    for g in 0..profile.num_gates {
        let names: Vec<String> = fanins[g].iter().map(|&s| sig_name(s)).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.add_gate(sig_name(n_src + g), kinds[g], &refs);
    }
    for &p in &pos {
        b.mark_output(sig_name(p));
    }
    b.build()
        .expect("generated circuit is valid by construction")
}

fn pick_source(rng: &mut StdRng, available: usize) -> usize {
    debug_assert!(available > 0);
    // Recency bias: 65% of picks come from the most recent quarter of the
    // signal pool, which yields realistic logic depth; the rest are uniform,
    // which yields long-range reconvergent fanout.
    if available > 4 && rng.gen_bool(0.65) {
        let window = (available / 4).max(4).min(available);
        rng.gen_range(available - window..available)
    } else {
        rng.gen_range(0..available)
    }
}

/// Builds an `n`-bit shift register: `si -> q0 -> q1 -> ... -> q{n-1} -> so`,
/// with an enable input gating the shifted bit. Useful for reasoning about
/// synchronizing sequences (its state is fully controllable in `n` cycles).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn shift_register(n: usize) -> Circuit {
    assert!(n > 0, "shift register needs at least one stage");
    let mut b = CircuitBuilder::new(format!("shift{n}"));
    b.add_input("si");
    b.add_input("en");
    for i in 0..n {
        let prev = if i == 0 {
            "si".to_string()
        } else {
            format!("q{}", i - 1)
        };
        b.add_gate(format!("d{i}"), GateKind::And, &[prev.as_str(), "en"]);
        b.add_dff(format!("q{i}"), format!("d{i}"));
    }
    b.add_gate("so", GateKind::Buf, &[&format!("q{}", n - 1)]);
    b.mark_output("so");
    b.build().expect("shift register is valid by construction")
}

/// Builds an `n`-bit synchronous binary counter with a synchronous reset.
/// All state bits are synchronizable (apply reset for one cycle), making
/// this a friendly target for the initialization phase.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn counter(n: usize) -> Circuit {
    assert!(n > 0, "counter needs at least one bit");
    let mut b = CircuitBuilder::new(format!("count{n}"));
    b.add_input("rst");
    b.add_gate("nrst", GateKind::Not, &["rst"]);
    // carry0 = 1 (count enable hard-wired): toggle bit0 each cycle.
    for i in 0..n {
        b.add_dff(format!("q{i}"), format!("d{i}"));
    }
    for i in 0..n {
        let q = format!("q{i}");
        if i == 0 {
            b.add_gate("t0", GateKind::Not, &[q.as_str()]);
            b.add_gate("d0", GateKind::And, &["t0", "nrst"]);
        } else {
            let carry = format!("c{i}");
            if i == 1 {
                b.add_gate(&carry, GateKind::Buf, &["q0"]);
            } else {
                let prev_carry = format!("c{}", i - 1);
                let prev_q = format!("q{}", i - 1);
                b.add_gate(
                    &carry,
                    GateKind::And,
                    &[prev_carry.as_str(), prev_q.as_str()],
                );
            }
            b.add_gate(
                format!("t{i}"),
                GateKind::Xor,
                &[q.as_str(), carry.as_str()],
            );
            b.add_gate(format!("d{i}"), GateKind::And, &[&format!("t{i}"), "nrst"]);
        }
        b.mark_output(format!("d{i}"));
    }
    b.build().expect("counter is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::to_bench;

    #[test]
    fn generation_is_deterministic() {
        let p = CircuitProfile::new("det", 6, 3, 4, 50, 7);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(to_bench(&a), to_bench(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CircuitProfile::new("s", 6, 3, 4, 50, 1));
        let b = generate(&CircuitProfile::new("s", 6, 3, 4, 50, 2));
        assert_ne!(to_bench(&a), to_bench(&b));
    }

    #[test]
    fn profile_counts_respected() {
        let p = CircuitProfile::new("cnt", 10, 4, 8, 120, 99);
        let c = generate(&p);
        assert_eq!(c.num_inputs(), 10);
        assert_eq!(c.num_dffs(), 8);
        assert_eq!(c.num_gates(), 120);
        assert!(c.num_outputs() >= 4);
    }

    #[test]
    fn every_gate_has_fanout_or_is_po() {
        let p = CircuitProfile::new("obs", 8, 3, 5, 80, 3);
        let c = generate(&p);
        for node in c.nodes() {
            if node.kind().is_combinational() {
                assert!(
                    !node.fanout().is_empty() || node.is_output(),
                    "gate {} is dangling",
                    node.name()
                );
            }
        }
    }

    #[test]
    fn all_pis_used() {
        let p = CircuitProfile::new("piu", 12, 3, 5, 60, 11);
        let c = generate(&p);
        for &pi in c.inputs() {
            assert!(
                !c.node(pi).fanout().is_empty() || c.node(pi).is_output(),
                "PI {} unused",
                c.node(pi).name()
            );
        }
    }

    #[test]
    fn has_reconvergent_fanout_at_scale() {
        let p = CircuitProfile::new("fan", 10, 4, 8, 200, 5);
        let c = generate(&p);
        assert!(c.stats().num_fanout_stems > 10);
    }

    #[test]
    fn depth_is_nontrivial() {
        let p = CircuitProfile::new("deep", 10, 4, 8, 200, 5);
        let c = generate(&p);
        assert!(c.max_level() >= 5, "depth {}", c.max_level());
    }

    #[test]
    fn shift_register_shape() {
        let c = shift_register(4);
        assert_eq!(c.num_dffs(), 4);
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
    }

    #[test]
    fn counter_shape() {
        let c = counter(3);
        assert_eq!(c.num_dffs(), 3);
        assert_eq!(c.num_outputs(), 3);
        assert_eq!(c.num_inputs(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_stage_shift_register_panics() {
        let _ = shift_register(0);
    }
}
