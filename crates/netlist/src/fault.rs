//! The fault universe.
//!
//! Section 3 of the paper: *"Under this model each gate output and each fan
//! out branch can contain a Slow-to-Rise (StR) and a Slow-to-Fall (StF)
//! fault, that both need to be tested robustly."*
//!
//! A [`FaultSite`] therefore designates either a *stem* (a node's output
//! net) or a specific *branch* of that net (one `(sink, pin)` edge). The
//! same site type is reused for the single-stuck-at universe needed by the
//! SEMILET substrate.

use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;
use std::fmt;

/// A fault location: a stem or one fanout branch of a stem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultSite {
    /// The driving node whose output net hosts the fault.
    pub stem: NodeId,
    /// `None` for a fault on the stem itself; `Some((sink, pin))` for a
    /// fault on the branch feeding input `pin` of `sink`.
    pub branch: Option<(NodeId, u8)>,
}

impl FaultSite {
    /// A fault on the stem (the gate output itself).
    pub fn on_stem(stem: NodeId) -> Self {
        FaultSite { stem, branch: None }
    }

    /// A fault on one fanout branch.
    pub fn on_branch(stem: NodeId, sink: NodeId, pin: u8) -> Self {
        FaultSite {
            stem,
            branch: Some((sink, pin)),
        }
    }

    /// Whether this is a branch fault.
    pub fn is_branch(self) -> bool {
        self.branch.is_some()
    }

    /// Human-readable description using circuit signal names.
    pub fn describe(self, circuit: &Circuit) -> String {
        match self.branch {
            None => circuit.node(self.stem).name().to_string(),
            Some((sink, pin)) => format!(
                "{}->{}[{}]",
                circuit.node(self.stem).name(),
                circuit.node(sink).name(),
                pin
            ),
        }
    }
}

/// Direction of a gate delay fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DelayFaultKind {
    /// The line is slow to rise: a 0→1 transition arrives late.
    SlowToRise,
    /// The line is slow to fall: a 1→0 transition arrives late.
    SlowToFall,
}

impl DelayFaultKind {
    /// Both fault directions.
    pub const ALL: [DelayFaultKind; 2] = [DelayFaultKind::SlowToRise, DelayFaultKind::SlowToFall];

    /// Short name as used in the paper ("StR"/"StF").
    pub fn short_name(self) -> &'static str {
        match self {
            DelayFaultKind::SlowToRise => "StR",
            DelayFaultKind::SlowToFall => "StF",
        }
    }
}

impl fmt::Display for DelayFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A gate delay fault: a site plus a slow transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DelayFault {
    /// Where the extra delay sits.
    pub site: FaultSite,
    /// Which transition is slow.
    pub kind: DelayFaultKind,
}

impl DelayFault {
    /// Human-readable description, e.g. `"G11 StR"` or `"G8->G15[1] StF"`.
    pub fn describe(self, circuit: &Circuit) -> String {
        format!("{} {}", self.site.describe(circuit), self.kind)
    }
}

/// Polarity of a single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StuckAtKind {
    /// Stuck at logic 0.
    StuckAt0,
    /// Stuck at logic 1.
    StuckAt1,
}

impl StuckAtKind {
    /// Both polarities.
    pub const ALL: [StuckAtKind; 2] = [StuckAtKind::StuckAt0, StuckAtKind::StuckAt1];

    /// The stuck value as a Boolean.
    pub fn value(self) -> bool {
        matches!(self, StuckAtKind::StuckAt1)
    }
}

impl fmt::Display for StuckAtKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckAtKind::StuckAt0 => f.write_str("sa0"),
            StuckAtKind::StuckAt1 => f.write_str("sa1"),
        }
    }
}

/// A single stuck-at fault (for the SEMILET static-fault substrate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StuckFault {
    /// Fault location.
    pub site: FaultSite,
    /// Stuck polarity.
    pub kind: StuckAtKind,
}

impl StuckFault {
    /// Human-readable description, e.g. `"G11 sa0"`.
    pub fn describe(self, circuit: &Circuit) -> String {
        format!("{} {}", self.site.describe(circuit), self.kind)
    }
}

/// A transition (gross-delay) fault: the line is slow enough that the
/// launched transition has not completed by the capture edge, so the
/// line's *final* value is wrong in the test frame.
///
/// The site/direction shape is the same as [`DelayFault`]'s, but the
/// detection condition is weaker: a transition fault needs only
/// *non-robust* sensitization (the final-value difference must reach an
/// observation point; off-path inputs may glitch). Described with
/// lowercase short names (`"str"`/`"stf"`) to keep transition faults
/// visually distinct from robust gate delay faults (`"StR"`/`"StF"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionFault {
    /// Where the slow transition sits.
    pub site: FaultSite,
    /// Which transition is slow.
    pub kind: DelayFaultKind,
}

impl TransitionFault {
    /// Short name of the direction (`"str"`/`"stf"`).
    pub fn short_name(self) -> &'static str {
        match self.kind {
            DelayFaultKind::SlowToRise => "str",
            DelayFaultKind::SlowToFall => "stf",
        }
    }

    /// Human-readable description, e.g. `"G11 str"` or `"G8->G15[1] stf"`.
    pub fn describe(self, circuit: &Circuit) -> String {
        format!("{} {}", self.site.describe(circuit), self.short_name())
    }
}

/// A fault of any model, as targeted through the unified engine API.
///
/// The delay-fault engines (non-scan and enhanced-scan) target
/// [`DelayFault`]s or [`TransitionFault`]s; the sequential stuck-at
/// engine targets [`StuckFault`]s. `Fault` lets one fault list, one
/// record type and one `AtpgEngine::target` signature cover all of them;
/// the model-generic operations (enumeration, collapsing, coverage
/// denominators) go through the [`crate::model::FaultModel`] trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fault {
    /// A gate delay fault (slow-to-rise / slow-to-fall, robust model).
    Delay(DelayFault),
    /// A single stuck-at fault.
    Stuck(StuckFault),
    /// A transition (gross-delay) fault.
    Transition(TransitionFault),
}

impl Fault {
    /// The fault's location, independent of the model.
    pub fn site(self) -> FaultSite {
        match self {
            Fault::Delay(f) => f.site,
            Fault::Stuck(f) => f.site,
            Fault::Transition(f) => f.site,
        }
    }

    /// The delay fault inside, if this is one.
    pub fn as_delay(self) -> Option<DelayFault> {
        match self {
            Fault::Delay(f) => Some(f),
            _ => None,
        }
    }

    /// The stuck-at fault inside, if this is one.
    pub fn as_stuck(self) -> Option<StuckFault> {
        match self {
            Fault::Stuck(f) => Some(f),
            _ => None,
        }
    }

    /// The transition fault inside, if this is one.
    pub fn as_transition(self) -> Option<TransitionFault> {
        match self {
            Fault::Transition(f) => Some(f),
            _ => None,
        }
    }

    /// Which fault model this fault belongs to.
    pub fn model(self) -> crate::model::ModelKind {
        match self {
            Fault::Delay(_) => crate::model::ModelKind::Delay,
            Fault::Stuck(_) => crate::model::ModelKind::Stuck,
            Fault::Transition(_) => crate::model::ModelKind::Transition,
        }
    }

    /// Human-readable description, e.g. `"G11 StR"`, `"G11 sa0"` or
    /// `"G11 str"`.
    pub fn describe(self, circuit: &Circuit) -> String {
        match self {
            Fault::Delay(f) => f.describe(circuit),
            Fault::Stuck(f) => f.describe(circuit),
            Fault::Transition(f) => f.describe(circuit),
        }
    }
}

impl From<DelayFault> for Fault {
    fn from(f: DelayFault) -> Self {
        Fault::Delay(f)
    }
}

impl From<StuckFault> for Fault {
    fn from(f: StuckFault) -> Self {
        Fault::Stuck(f)
    }
}

impl From<TransitionFault> for Fault {
    fn from(f: TransitionFault) -> Self {
        Fault::Transition(f)
    }
}

/// Options controlling fault-universe enumeration.
///
/// The paper tests *"each line"*; by default we enumerate every node output
/// (including primary inputs and flip-flop outputs) and every fanout branch
/// of multi-fanout stems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultUniverse {
    /// Include primary-input stems as fault sites.
    pub include_pi_stems: bool,
    /// Include flip-flop output (PPI) stems as fault sites.
    pub include_ppi_stems: bool,
    /// Include fanout branches of multi-fanout stems.
    pub include_branches: bool,
}

impl Default for FaultUniverse {
    fn default() -> Self {
        FaultUniverse {
            include_pi_stems: true,
            include_ppi_stems: true,
            include_branches: true,
        }
    }
}

impl FaultUniverse {
    /// The paper's universe (all lines: every stem and every branch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Only gate-output stems (no PI/PPI stems, no branches) — a reduced
    /// universe useful for quick smoke runs.
    pub fn stems_only() -> Self {
        FaultUniverse {
            include_pi_stems: false,
            include_ppi_stems: false,
            include_branches: false,
        }
    }

    /// The named universes every user-facing surface shares
    /// (`gdf --universe`, `gdf serve` submissions): `full` (the default
    /// enumeration) or `stems` ([`FaultUniverse::stems_only`]).
    pub fn parse_name(name: &str) -> Result<Self, String> {
        match name {
            "full" => Ok(FaultUniverse::default()),
            "stems" => Ok(FaultUniverse::stems_only()),
            other => Err(format!("unknown universe `{other}` (full|stems)")),
        }
    }

    /// Number of fault sites one node hosts under these options: the
    /// stem plus (when branch faults are enabled and the stem actually
    /// fans out) one per fanout branch; `None` when the node kind is
    /// excluded. The **single** inclusion rule behind the eager
    /// [`FaultUniverse::sites`] list, [`FaultUniverse::site_count`], and
    /// the lazy [`crate::model::FaultSet`] cursor — which must agree
    /// exactly, because artifact fault indexes and resume alignment
    /// depend on the lazy and eager orders being identical.
    pub(crate) fn node_sites(&self, node: &crate::circuit::Node) -> Option<usize> {
        let included = match node.kind() {
            GateKind::Input => self.include_pi_stems,
            GateKind::Dff => self.include_ppi_stems,
            _ => true,
        };
        if !included {
            return None;
        }
        let branches = if self.include_branches && node.fanout().len() > 1 {
            node.fanout().len()
        } else {
            0
        };
        Some(1 + branches)
    }

    /// Enumerates fault sites for `circuit` under these options.
    pub fn sites(&self, circuit: &Circuit) -> Vec<FaultSite> {
        let mut sites = Vec::new();
        for (idx, node) in circuit.nodes().iter().enumerate() {
            let id = NodeId(idx as u32);
            let Some(count) = self.node_sites(node) else {
                continue;
            };
            sites.push(FaultSite::on_stem(id));
            if count > 1 {
                for &(sink, pin) in node.fanout() {
                    sites.push(FaultSite::on_branch(id, sink, pin));
                }
            }
        }
        sites
    }

    /// Number of fault sites [`FaultUniverse::sites`] would enumerate,
    /// without materializing them.
    pub fn site_count(&self, circuit: &Circuit) -> usize {
        circuit
            .nodes()
            .iter()
            .filter_map(|n| self.node_sites(n))
            .sum()
    }

    /// Enumerates the delay-fault list: one StR and one StF per site.
    pub fn delay_faults(&self, circuit: &Circuit) -> Vec<DelayFault> {
        self.sites(circuit)
            .into_iter()
            .flat_map(|site| {
                DelayFaultKind::ALL
                    .into_iter()
                    .map(move |kind| DelayFault { site, kind })
            })
            .collect()
    }

    /// Enumerates the transition-fault list: one slow-to-rise and one
    /// slow-to-fall per site.
    pub fn transition_faults(&self, circuit: &Circuit) -> Vec<TransitionFault> {
        self.sites(circuit)
            .into_iter()
            .flat_map(|site| {
                DelayFaultKind::ALL
                    .into_iter()
                    .map(move |kind| TransitionFault { site, kind })
            })
            .collect()
    }

    /// Enumerates the single-stuck-at fault list: one sa0 and one sa1 per
    /// site.
    pub fn stuck_faults(&self, circuit: &Circuit) -> Vec<StuckFault> {
        self.sites(circuit)
            .into_iter()
            .flat_map(|site| {
                StuckAtKind::ALL
                    .into_iter()
                    .map(move |kind| StuckFault { site, kind })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    fn toy() -> Circuit {
        let mut b = CircuitBuilder::new("toy");
        b.add_input("a");
        b.add_input("b");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::Nand, &["a", "q"]);
        b.add_gate("y", GateKind::Nor, &["b", "d"]);
        b.mark_output("y");
        b.build().unwrap()
    }

    #[test]
    fn default_universe_counts() {
        let c = toy();
        let sites = FaultUniverse::default().sites(&c);
        // Stems: a, b, q, d, y = 5. Branches: only `d` has 2 fanouts -> 2.
        assert_eq!(sites.len(), 7);
        assert_eq!(sites.iter().filter(|s| s.is_branch()).count(), 2);
        assert_eq!(FaultUniverse::default().delay_faults(&c).len(), 14);
        assert_eq!(FaultUniverse::default().stuck_faults(&c).len(), 14);
    }

    #[test]
    fn stems_only_universe() {
        let c = toy();
        let sites = FaultUniverse::stems_only().sites(&c);
        // Only gate stems d and y.
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| !s.is_branch()));
    }

    #[test]
    fn describe_uses_names() {
        let c = toy();
        let d = c.node_by_name("d").unwrap();
        let y = c.node_by_name("y").unwrap();
        let f = DelayFault {
            site: FaultSite::on_branch(d, y, 1),
            kind: DelayFaultKind::SlowToFall,
        };
        assert_eq!(f.describe(&c), "d->y[1] StF");
        let s = StuckFault {
            site: FaultSite::on_stem(d),
            kind: StuckAtKind::StuckAt1,
        };
        assert_eq!(s.describe(&c), "d sa1");
    }

    #[test]
    fn single_fanout_stems_have_no_branch_faults() {
        let c = toy();
        let a = c.node_by_name("a").unwrap();
        let sites = FaultUniverse::default().sites(&c);
        assert!(sites.iter().all(|s| !(s.stem == a && s.is_branch())));
    }
}
