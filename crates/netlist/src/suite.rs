//! The benchmark suite used by the Table 3 reproduction.
//!
//! `s27` is the exact ISCAS'89 netlist (it is printed in full in the
//! benchmark literature and is small enough to verify by hand). The
//! remaining Table 3 circuits are *synthetic profile-matched* stand-ins
//! produced by [`crate::generator`]; see `DESIGN.md` §5 for the
//! substitution rationale. Each synthetic circuit carries the suffix
//! `_syn` to make the substitution impossible to miss in any output.

use crate::circuit::Circuit;
use crate::generator::{generate, CircuitProfile};
use crate::parser::parse_bench;

/// The exact ISCAS'89 `s27` netlist: 4 PIs, 1 PO, 3 DFFs, 10 gates.
///
/// # Example
///
/// ```
/// let c = gdf_netlist::suite::s27();
/// assert_eq!(c.stats().num_gates, 10);
/// ```
pub fn s27() -> Circuit {
    const SRC: &str = "
        # s27 — ISCAS'89 sequential benchmark (exact netlist)
        INPUT(G0)
        INPUT(G1)
        INPUT(G2)
        INPUT(G3)
        OUTPUT(G17)
        G5 = DFF(G10)
        G6 = DFF(G11)
        G7 = DFF(G13)
        G14 = NOT(G0)
        G17 = NOT(G11)
        G8 = AND(G14, G6)
        G15 = OR(G12, G8)
        G16 = OR(G3, G8)
        G9 = NAND(G16, G15)
        G10 = NOR(G14, G11)
        G11 = NOR(G5, G9)
        G12 = NOR(G1, G7)
        G13 = NOR(G2, G12)
    ";
    parse_bench("s27", SRC).expect("embedded s27 netlist is valid")
}

/// Published profile of one Table 3 circuit:
/// `(name, pi, po, dff, gates, seed salt)`.
///
/// Counts follow the standard ISCAS'89 statistics tables; where
/// distributions disagree by a gate or two we use the most commonly cited
/// values. The paper's Table 3 rows appear in this order.
///
/// The *salt* disambiguates the per-circuit generation seed: a handful of
/// profiles draw a degenerate random instance (logic that is largely
/// robustly untestable) under salt 0, so a fixed salt was chosen once to
/// get a structurally typical instance; see `DESIGN.md` §5. All salts are
/// hard-coded — the suite is fully deterministic.
pub const TABLE3_PROFILES: &[(&str, usize, usize, usize, usize, u64)] = &[
    ("s27", 4, 1, 3, 10, 0),
    ("s208", 10, 1, 8, 96, 2),
    ("s298", 3, 6, 14, 119, 0),
    ("s344", 9, 11, 15, 160, 0),
    ("s349", 9, 11, 15, 161, 0),
    ("s386", 7, 7, 6, 159, 0),
    ("s420", 18, 1, 16, 218, 1),
    ("s641", 35, 24, 19, 379, 0),
    ("s713", 35, 23, 19, 393, 0),
    ("s838", 34, 1, 32, 446, 0),
    ("s1196", 14, 14, 18, 529, 0),
    ("s1238", 14, 14, 18, 508, 0),
];

/// Paper's Table 3 reference numbers for side-by-side reporting:
/// `(name, tested, untestable, aborted, patterns, seconds_on_sparc10)`.
pub const TABLE3_PAPER_RESULTS: &[(&str, u32, u32, u32, u32, u32)] = &[
    ("s27", 39, 11, 13, 40, 0),
    ("s208", 112, 242, 13, 16, 90),
    ("s298", 164, 260, 163, 110, 452),
    ("s344", 313, 199, 1148, 100, 403),
    ("s349", 312, 211, 494, 101, 394),
    ("s386", 332, 335, 500, 77, 80),
    ("s420", 124, 584, 390, 32, 169),
    ("s641", 807, 136, 166, 211, 310),
    ("s713", 427, 395, 560, 432, 795),
    ("s838", 113, 1277, 292, 84, 522),
    ("s1196", 2114, 69, 152, 1533, 243),
    ("s1238", 2181, 136, 1533, 1524, 301),
];

/// Fixed generation seed so the synthetic suite is identical across runs
/// and machines.
pub const SUITE_SEED: u64 = 0x1995_0308; // DATE'95, paper starts at p. 308

/// Returns the benchmark circuit for a Table 3 row: the exact `s27`, or the
/// synthetic profile-matched stand-in `<name>_syn` otherwise. Returns
/// `None` for names not in [`TABLE3_PROFILES`].
pub fn table3_circuit(name: &str) -> Option<Circuit> {
    let &(n, pi, po, dff, gates, salt) = TABLE3_PROFILES.iter().find(|&&(n, ..)| n == name)?;
    if n == "s27" {
        return Some(s27());
    }
    let profile = CircuitProfile::new(
        format!("{n}_syn"),
        pi,
        po,
        dff,
        gates,
        SUITE_SEED ^ fxhash(n) ^ salt,
    );
    Some(generate(&profile))
}

/// All Table 3 circuits in paper order.
pub fn table3_suite() -> Vec<Circuit> {
    TABLE3_PROFILES
        .iter()
        .map(|&(name, ..)| table3_circuit(name).expect("profile exists"))
        .collect()
}

/// Tiny deterministic string hash (FNV-1a) used to derive per-circuit seeds.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_matches_published_structure() {
        let c = s27();
        let s = c.stats();
        assert_eq!(s.num_inputs, 4);
        assert_eq!(s.num_outputs, 1);
        assert_eq!(s.num_dffs, 3);
        assert_eq!(s.num_gates, 10);
        // Famous structural facts about s27:
        let g11 = c.node_by_name("G11").unwrap();
        assert!(c.node(g11).fanout().len() >= 2, "G11 is a fanout stem");
        let g17 = c.node_by_name("G17").unwrap();
        assert!(c.node(g17).is_output());
    }

    #[test]
    fn table3_profiles_all_generate() {
        for &(name, pi, _po, dff, gates, _salt) in TABLE3_PROFILES {
            let c = table3_circuit(name).unwrap();
            assert_eq!(c.num_inputs(), pi, "{name}");
            assert_eq!(c.num_dffs(), dff, "{name}");
            assert_eq!(c.num_gates(), gates, "{name}");
        }
    }

    #[test]
    fn synthetic_circuits_are_marked() {
        let c = table3_circuit("s298").unwrap();
        assert_eq!(c.name(), "s298_syn");
        assert_eq!(table3_circuit("s27").unwrap().name(), "s27");
    }

    #[test]
    fn unknown_circuit_is_none() {
        assert!(table3_circuit("s9234").is_none());
    }

    #[test]
    fn suite_is_deterministic() {
        let a = table3_circuit("s641").unwrap();
        let b = table3_circuit("s641").unwrap();
        assert_eq!(crate::writer::to_bench(&a), crate::writer::to_bench(&b));
    }

    #[test]
    fn paper_results_cover_all_profiles() {
        for &(name, ..) in TABLE3_PROFILES {
            assert!(
                TABLE3_PAPER_RESULTS.iter().any(|&(n, ..)| n == name),
                "missing paper row for {name}"
            );
        }
    }
}
