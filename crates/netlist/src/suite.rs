//! The benchmark suite used by the Table 3 reproduction.
//!
//! `s27` is the exact ISCAS'89 netlist (it is printed in full in the
//! benchmark literature and is small enough to verify by hand). The
//! remaining Table 3 circuits are *synthetic profile-matched* stand-ins
//! produced by [`crate::generator`]; see `DESIGN.md` §5 for the
//! substitution rationale. Each synthetic circuit carries the suffix
//! `_syn` to make the substitution impossible to miss in any output.

use crate::circuit::Circuit;
use crate::generator::{generate, CircuitProfile};
use crate::parser::parse_bench;

/// The exact ISCAS'89 `s27` netlist: 4 PIs, 1 PO, 3 DFFs, 10 gates.
///
/// # Example
///
/// ```
/// let c = gdf_netlist::suite::s27();
/// assert_eq!(c.stats().num_gates, 10);
/// ```
pub fn s27() -> Circuit {
    const SRC: &str = "
        # s27 — ISCAS'89 sequential benchmark (exact netlist)
        INPUT(G0)
        INPUT(G1)
        INPUT(G2)
        INPUT(G3)
        OUTPUT(G17)
        G5 = DFF(G10)
        G6 = DFF(G11)
        G7 = DFF(G13)
        G14 = NOT(G0)
        G17 = NOT(G11)
        G8 = AND(G14, G6)
        G15 = OR(G12, G8)
        G16 = OR(G3, G8)
        G9 = NAND(G16, G15)
        G10 = NOR(G14, G11)
        G11 = NOR(G5, G9)
        G12 = NOR(G1, G7)
        G13 = NOR(G2, G12)
    ";
    parse_bench("s27", SRC).expect("embedded s27 netlist is valid")
}

/// Published profile of one Table 3 circuit:
/// `(name, pi, po, dff, gates, seed salt)`.
///
/// Counts follow the standard ISCAS'89 statistics tables; where
/// distributions disagree by a gate or two we use the most commonly cited
/// values. The paper's Table 3 rows appear in this order.
///
/// The *salt* disambiguates the per-circuit generation seed: a handful of
/// profiles draw a degenerate random instance (logic that is largely
/// robustly untestable) under salt 0, so a fixed salt was chosen once to
/// get a structurally typical instance; see `DESIGN.md` §5. All salts are
/// hard-coded — the suite is fully deterministic.
pub const TABLE3_PROFILES: &[(&str, usize, usize, usize, usize, u64)] = &[
    ("s27", 4, 1, 3, 10, 0),
    ("s208", 10, 1, 8, 96, 2),
    ("s298", 3, 6, 14, 119, 0),
    ("s344", 9, 11, 15, 160, 0),
    ("s349", 9, 11, 15, 161, 0),
    ("s386", 7, 7, 6, 159, 0),
    ("s420", 18, 1, 16, 218, 1),
    ("s641", 35, 24, 19, 379, 0),
    ("s713", 35, 23, 19, 393, 0),
    ("s838", 34, 1, 32, 446, 0),
    ("s1196", 14, 14, 18, 529, 0),
    ("s1238", 14, 14, 18, 508, 0),
];

/// Paper's Table 3 reference numbers for side-by-side reporting:
/// `(name, tested, untestable, aborted, patterns, seconds_on_sparc10)`.
pub const TABLE3_PAPER_RESULTS: &[(&str, u32, u32, u32, u32, u32)] = &[
    ("s27", 39, 11, 13, 40, 0),
    ("s208", 112, 242, 13, 16, 90),
    ("s298", 164, 260, 163, 110, 452),
    ("s344", 313, 199, 1148, 100, 403),
    ("s349", 312, 211, 494, 101, 394),
    ("s386", 332, 335, 500, 77, 80),
    ("s420", 124, 584, 390, 32, 169),
    ("s641", 807, 136, 166, 211, 310),
    ("s713", 427, 395, 560, 432, 795),
    ("s838", 113, 1277, 292, 84, 522),
    ("s1196", 2114, 69, 152, 1533, 243),
    ("s1238", 2181, 136, 1533, 1524, 301),
];

/// Fixed generation seed so the synthetic suite is identical across runs
/// and machines.
pub const SUITE_SEED: u64 = 0x1995_0308; // DATE'95, paper starts at p. 308

/// Returns the benchmark circuit for a Table 3 row: the exact `s27`, or the
/// synthetic profile-matched stand-in `<name>_syn` otherwise. Returns
/// `None` for names not in [`TABLE3_PROFILES`].
pub fn table3_circuit(name: &str) -> Option<Circuit> {
    let &(n, pi, po, dff, gates, salt) = TABLE3_PROFILES.iter().find(|&&(n, ..)| n == name)?;
    if n == "s27" {
        return Some(s27());
    }
    let profile = CircuitProfile::new(
        format!("{n}_syn"),
        pi,
        po,
        dff,
        gates,
        SUITE_SEED ^ fxhash(n) ^ salt,
    );
    Some(generate(&profile))
}

/// All Table 3 circuits in paper order.
pub fn table3_suite() -> Vec<Circuit> {
    TABLE3_PROFILES
        .iter()
        .map(|&(name, ..)| table3_circuit(name).expect("profile exists"))
        .collect()
}

/// Embedded `.bench` sources beyond `s27`: **original** sequential
/// circuits written in the ISCAS'89 idiom (they are *not* published
/// benchmarks — the numbers are net counts, chosen to avoid colliding
/// with real ISCAS'89 names). Each is parsed by [`parse_bench`] on every
/// construction, so the suite and every campaign over it exercise the
/// parser, and each brings a different sequential shape to the scenario
/// mix:
///
/// * `s42` — a 3-bit binary counter with synchronous clear and decoded
///   outputs (carry-chain logic, classic re-convergence);
/// * `s77` — a 4-bit XOR-feedback shift register (LFSR) with a hold mode
///   and a comparator output (parity gates, hold multiplexers);
/// * `s119` — two interacting 3-bit registers (load/rotate vs. XOR-mix)
///   with an equality/greater-than comparator and an output mux (wide
///   AND/OR trees, deep state interaction).
pub const EXTRA_BENCHES: &[(&str, &str)] = &[
    (
        "s42",
        "
        # s42 — 3-bit binary counter, synchronous clear, decoded outputs
        INPUT(en)
        INPUT(clr)
        OUTPUT(z0)
        OUTPUT(z1)
        q0 = DFF(d0)
        q1 = DFF(d1)
        q2 = DFF(d2)
        nen = NOT(en)
        nclr = NOT(clr)
        t0 = XOR(q0, en)
        t1 = AND(q0, en)
        t2 = XOR(q1, t1)
        t3 = AND(q1, t1)
        t4 = XOR(q2, t3)
        d0 = AND(t0, nclr)
        d1 = AND(t2, nclr)
        d2 = AND(t4, nclr)
        z0 = NAND(q0, q2)
        z1 = NOR(q1, nen)
        ",
    ),
    (
        "s77",
        "
        # s77 — 4-bit LFSR with hold mode and comparator output
        INPUT(din)
        INPUT(hold)
        INPUT(mode)
        OUTPUT(match)
        OUTPUT(par)
        q0 = DFF(d0)
        q1 = DFF(d1)
        q2 = DFF(d2)
        q3 = DFF(d3)
        fb = XOR(q3, q2)
        inj = XOR(fb, din)
        nhold = NOT(hold)
        s0 = AND(inj, nhold)
        h0 = AND(q0, hold)
        d0 = OR(s0, h0)
        s1 = AND(q0, nhold)
        h1 = AND(q1, hold)
        d1 = OR(s1, h1)
        s2 = AND(q1, nhold)
        h2 = AND(q2, hold)
        d2 = OR(s2, h2)
        s3 = AND(q2, nhold)
        h3 = AND(q3, hold)
        d3 = OR(s3, h3)
        m0 = XNOR(q0, mode)
        m1 = XNOR(q1, mode)
        m2 = AND(m0, m1)
        m3 = NAND(q2, q3)
        match = AND(m2, m3)
        par = XOR(inj, q1)
        ",
    ),
    (
        "s119",
        "
        # s119 — dual 3-bit registers (load/rotate vs XOR-mix), comparator, mux
        INPUT(a0)
        INPUT(a1)
        INPUT(ld)
        INPUT(sel)
        OUTPUT(eq)
        OUTPUT(gt)
        OUTPUT(y)
        x0 = DFF(nx0)
        x1 = DFF(nx1)
        x2 = DFF(nx2)
        w0 = DFF(nw0)
        w1 = DFF(nw1)
        w2 = DFF(nw2)
        nld = NOT(ld)
        l0 = AND(a0, ld)
        r0 = AND(x2, nld)
        nx0 = OR(l0, r0)
        l1 = AND(a1, ld)
        r1 = AND(x0, nld)
        nx1 = OR(l1, r1)
        l2 = AND(sel, ld)
        r2 = AND(x1, nld)
        nx2 = OR(l2, r2)
        g0 = XOR(w0, x0)
        g1 = XOR(w1, x1)
        g2 = XOR(w2, x2)
        nw0 = AND(g0, nld)
        nw1 = OR(g1, l1)
        nw2 = XOR(g2, sel)
        e0 = XNOR(x0, w0)
        e1 = XNOR(x1, w1)
        e2 = XNOR(x2, w2)
        eq = AND(e0, e1, e2)
        nwb0 = NOT(w0)
        nwb1 = NOT(w1)
        nwb2 = NOT(w2)
        gt2 = AND(x2, nwb2)
        gt1 = AND(e2, x1, nwb1)
        gt0 = AND(e2, e1, x0, nwb0)
        gt = OR(gt2, gt1, gt0)
        nsel = NOT(sel)
        ym1 = AND(sel, x0)
        ym2 = AND(nsel, w0)
        y = OR(ym1, ym2)
        ",
    ),
];

/// Builds one embedded extra circuit by parsing its `.bench` source.
/// Returns `None` for names not in [`EXTRA_BENCHES`].
///
/// # Example
///
/// ```
/// let c = gdf_netlist::suite::extra_circuit("s42").unwrap();
/// assert_eq!(c.num_dffs(), 3);
/// ```
pub fn extra_circuit(name: &str) -> Option<Circuit> {
    let &(n, src) = EXTRA_BENCHES.iter().find(|&&(n, _)| n == name)?;
    Some(parse_bench(n, src).expect("embedded bench source is valid"))
}

/// The raw `.bench` source of an embedded extra circuit.
pub fn extra_bench_source(name: &str) -> Option<&'static str> {
    EXTRA_BENCHES
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, src)| src)
}

/// All embedded extra circuits, parsed.
pub fn extra_suite() -> Vec<Circuit> {
    EXTRA_BENCHES
        .iter()
        .map(|&(name, _)| extra_circuit(name).expect("embedded"))
        .collect()
}

/// The full campaign suite: every Table 3 circuit followed by the
/// embedded `.bench`-sourced extras.
pub fn full_suite() -> Vec<Circuit> {
    let mut all = table3_suite();
    all.extend(extra_suite());
    all
}

/// Looks a suite circuit up by name: a Table 3 profile name (`"s27"`,
/// `"s298"`, …) or an embedded extra (`"s42"`, `"s77"`, `"s119"`). The
/// resolution artifact loaders use for `suite:<name>` references.
pub fn by_name(name: &str) -> Option<Circuit> {
    table3_circuit(name).or_else(|| extra_circuit(name))
}

/// Tiny deterministic string hash (FNV-1a) used to derive per-circuit seeds.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_matches_published_structure() {
        let c = s27();
        let s = c.stats();
        assert_eq!(s.num_inputs, 4);
        assert_eq!(s.num_outputs, 1);
        assert_eq!(s.num_dffs, 3);
        assert_eq!(s.num_gates, 10);
        // Famous structural facts about s27:
        let g11 = c.node_by_name("G11").unwrap();
        assert!(c.node(g11).fanout().len() >= 2, "G11 is a fanout stem");
        let g17 = c.node_by_name("G17").unwrap();
        assert!(c.node(g17).is_output());
    }

    #[test]
    fn table3_profiles_all_generate() {
        for &(name, pi, _po, dff, gates, _salt) in TABLE3_PROFILES {
            let c = table3_circuit(name).unwrap();
            assert_eq!(c.num_inputs(), pi, "{name}");
            assert_eq!(c.num_dffs(), dff, "{name}");
            assert_eq!(c.num_gates(), gates, "{name}");
        }
    }

    #[test]
    fn synthetic_circuits_are_marked() {
        let c = table3_circuit("s298").unwrap();
        assert_eq!(c.name(), "s298_syn");
        assert_eq!(table3_circuit("s27").unwrap().name(), "s27");
    }

    #[test]
    fn unknown_circuit_is_none() {
        assert!(table3_circuit("s9234").is_none());
    }

    #[test]
    fn suite_is_deterministic() {
        let a = table3_circuit("s641").unwrap();
        let b = table3_circuit("s641").unwrap();
        assert_eq!(crate::writer::to_bench(&a), crate::writer::to_bench(&b));
    }

    #[test]
    fn extra_benches_parse_and_are_sequential() {
        for &(name, _) in EXTRA_BENCHES {
            let c = extra_circuit(name).unwrap();
            assert_eq!(c.name(), name);
            assert!(c.num_dffs() >= 3, "{name} is sequential");
            assert!(c.num_outputs() >= 2, "{name} has observation points");
            // Parsed fresh every time, deterministically.
            let again = extra_circuit(name).unwrap();
            assert_eq!(crate::writer::to_bench(&c), crate::writer::to_bench(&again));
        }
        assert_eq!(extra_suite().len(), EXTRA_BENCHES.len());
    }

    #[test]
    fn by_name_resolves_profiles_and_extras() {
        assert_eq!(by_name("s27").unwrap().name(), "s27");
        assert_eq!(by_name("s298").unwrap().name(), "s298_syn");
        assert_eq!(by_name("s77").unwrap().name(), "s77");
        assert!(by_name("nope").is_none());
        assert_eq!(
            full_suite().len(),
            TABLE3_PROFILES.len() + EXTRA_BENCHES.len()
        );
    }

    #[test]
    fn paper_results_cover_all_profiles() {
        for &(name, ..) in TABLE3_PROFILES {
            assert!(
                TABLE3_PAPER_RESULTS.iter().any(|&(n, ..)| n == name),
                "missing paper row for {name}"
            );
        }
    }
}
