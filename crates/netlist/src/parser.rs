//! Reader for the ISCAS'89 `.bench` netlist format.
//!
//! The format is line oriented:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G11 = NAND(G0, G10)
//! ```
//!
//! There is no mature crate for this format, so the parser is written from
//! scratch. It is tolerant of whitespace, blank lines, `#` comments and
//! lower-case keywords, and reports precise line numbers on error.

use crate::circuit::{BuildError, Circuit, CircuitBuilder};
use crate::gate::GateKind;
use std::fmt;

/// Errors reported by [`parse_bench`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line could not be parsed at all.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation of what was expected.
        message: String,
    },
    /// A gate keyword was not recognized.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The unrecognized keyword.
        keyword: String,
    },
    /// The netlist parsed but failed semantic validation.
    Build(BuildError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseBenchError::UnknownGate { line, keyword } => {
                write!(f, "line {line}: unknown gate keyword `{keyword}`")
            }
            ParseBenchError::Build(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBenchError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for ParseBenchError {
    fn from(e: BuildError) -> Self {
        ParseBenchError::Build(e)
    }
}

/// Parses ISCAS'89 `.bench` text into a validated [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate keywords, or
/// semantic problems (undefined signals, cycles, bad arities).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), gdf_netlist::ParseBenchError> {
/// let src = "
///     INPUT(a)
///     OUTPUT(y)
///     q = DFF(d)
///     d = NAND(a, q)
///     y = NOT(d)
/// ";
/// let c = gdf_netlist::parse_bench("tiny", src)?;
/// assert_eq!(c.num_gates(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(name: &str, source: &str) -> Result<Circuit, ParseBenchError> {
    let mut builder = CircuitBuilder::new(name);
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = strip_decl(line, "INPUT") {
            let signal = parse_single_arg(rest, line_no)?;
            builder.add_input(signal);
            continue;
        }
        if let Some(rest) = strip_decl(line, "OUTPUT") {
            let signal = parse_single_arg(rest, line_no)?;
            builder.mark_output(signal);
            continue;
        }

        // `name = KIND(arg, arg, ...)`
        let eq = line.find('=').ok_or_else(|| ParseBenchError::Syntax {
            line: line_no,
            message: format!("expected `signal = GATE(...)`, got `{line}`"),
        })?;
        let lhs = line[..eq].trim();
        if lhs.is_empty() || !is_signal_name(lhs) {
            return Err(ParseBenchError::Syntax {
                line: line_no,
                message: format!("invalid signal name `{lhs}`"),
            });
        }
        let rhs = line[eq + 1..].trim();
        let open = rhs.find('(').ok_or_else(|| ParseBenchError::Syntax {
            line: line_no,
            message: format!("expected `GATE(...)` after `=`, got `{rhs}`"),
        })?;
        if !rhs.ends_with(')') {
            return Err(ParseBenchError::Syntax {
                line: line_no,
                message: "missing closing parenthesis".into(),
            });
        }
        let keyword = rhs[..open].trim();
        let kind =
            GateKind::from_bench_keyword(keyword).ok_or_else(|| ParseBenchError::UnknownGate {
                line: line_no,
                keyword: keyword.to_string(),
            })?;
        let args: Vec<&str> = rhs[open + 1..rhs.len() - 1]
            .split(',')
            .map(str::trim)
            .collect();
        if args.iter().any(|a| a.is_empty() || !is_signal_name(a)) {
            return Err(ParseBenchError::Syntax {
                line: line_no,
                message: format!("invalid argument list in `{rhs}`"),
            });
        }
        if kind == GateKind::Dff {
            if args.len() != 1 {
                return Err(ParseBenchError::Syntax {
                    line: line_no,
                    message: "DFF takes exactly one argument".into(),
                });
            }
            builder.add_dff(lhs, args[0]);
        } else {
            builder.add_gate(lhs, kind, &args);
        }
    }
    Ok(builder.build()?)
}

fn strip_decl<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let upper_len = keyword.len();
    if line.len() > upper_len && line[..upper_len].eq_ignore_ascii_case(keyword) {
        let rest = line[upper_len..].trim_start();
        if rest.starts_with('(') {
            return Some(rest);
        }
    }
    None
}

fn parse_single_arg(rest: &str, line_no: usize) -> Result<&str, ParseBenchError> {
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .map(str::trim)
        .ok_or_else(|| ParseBenchError::Syntax {
            line: line_no,
            message: "expected `(signal)`".into(),
        })?;
    if inner.is_empty() || !is_signal_name(inner) {
        return Err(ParseBenchError::Syntax {
            line: line_no,
            message: format!("invalid signal name `{inner}`"),
        });
    }
    Ok(inner)
}

fn is_signal_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '[' | ']' | '$'))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "
        # a tiny sequential circuit
        INPUT(a)
        INPUT(b)
        OUTPUT(y)
        q = DFF(d)
        d = NAND(a, q)
        y = NOR(b, d)
    ";

    #[test]
    fn parses_tiny() {
        let c = parse_bench("tiny", TINY).unwrap();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.node(c.node_by_name("d").unwrap()).kind(), GateKind::Nand);
    }

    #[test]
    fn accepts_lower_case_and_buff_alias() {
        let c = parse_bench("lc", "input(x)\noutput(z)\nz = buff(x)\n").unwrap();
        assert_eq!(c.node(c.node_by_name("z").unwrap()).kind(), GateKind::Buf);
    }

    #[test]
    fn comment_after_statement() {
        let c = parse_bench("c", "INPUT(a) # the input\nOUTPUT(a)\n").unwrap();
        assert_eq!(c.num_inputs(), 1);
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = parse_bench("bad", "INPUT(a)\nz = FROB(a)\nOUTPUT(z)").unwrap_err();
        assert!(matches!(err, ParseBenchError::UnknownGate { line: 2, .. }));
    }

    #[test]
    fn rejects_missing_equals() {
        let err = parse_bench("bad", "z NAND(a, b)").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 1, .. }));
    }

    #[test]
    fn rejects_missing_paren() {
        let err = parse_bench("bad", "INPUT(a)\nz = NOT(a").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 2, .. }));
    }

    #[test]
    fn rejects_dff_with_two_args() {
        let err = parse_bench("bad", "INPUT(a)\nINPUT(b)\nq = DFF(a, b)").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 3, .. }));
    }

    #[test]
    fn rejects_undefined_signal_via_build() {
        let err = parse_bench("bad", "INPUT(a)\nz = AND(a, ghost)\nOUTPUT(z)").unwrap_err();
        assert!(matches!(err, ParseBenchError::Build(_)));
    }

    #[test]
    fn error_display_includes_line() {
        let err = parse_bench("bad", "???").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn signal_names_with_brackets() {
        let c = parse_bench("v", "INPUT(data[0])\nOUTPUT(out$1)\nout$1 = NOT(data[0])").unwrap();
        assert!(c.node_by_name("data[0]").is_some());
    }
}
