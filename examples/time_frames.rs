//! The time-frame model of Figure 2, made concrete.
//!
//! For one target fault in s27 this example prints the assembled test
//! sequence with its clock schedule (slow … slow, **fast**, slow … slow)
//! and the 8-valued two-frame waveform of the fast frame — the values
//! TDgen reasons about, including the fault-carrying `Rc`/`Fc` marks.
//!
//! ```text
//! cargo run --example time_frames
//! ```

use gdf::core::{Atpg, FaultClassification};
use gdf::netlist::suite;
use gdf::sim::two_frame_values;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let circuit = suite::s27();
    let run = Atpg::builder(&circuit).build().run();

    let record = run
        .records
        .iter()
        .find(|r| {
            r.classification == FaultClassification::Tested
                && !r.by_simulation
                && r.sequence_index
                    .map(|i| run.sequences[i].propagation_len() > 0)
                    .unwrap_or(false)
        })
        .or_else(|| {
            run.records
                .iter()
                .find(|r| r.classification == FaultClassification::Tested && !r.by_simulation)
        })
        .expect("s27 has tested faults");
    let seq = &run.sequences[record.sequence_index.expect("tested")];

    println!("target fault: {}", record.fault.describe(&circuit));
    println!("\nclock schedule (Figure 2):");
    for (k, tv) in seq.vectors().iter().enumerate() {
        let role = if k < seq.init_len() {
            "initialization"
        } else if k == seq.fast_frame_index() - 1 {
            "V1 (launch)   "
        } else if k == seq.fast_frame_index() {
            "V2 (capture)  "
        } else {
            "propagation   "
        };
        let bits: String = tv.pi.iter().map(|l| l.to_string()).collect();
        println!(
            "  frame {k}: {bits}  clock={:<5} {role}",
            tv.clock.to_string()
        );
    }

    // The fast frame in the 8-valued algebra: fill don't-cares, simulate
    // the initialization, and evaluate the two-frame waveform.
    let mut rng = StdRng::seed_from_u64(1);
    let filled = seq.filled_with(|| rng.gen());
    let fast = seq.fast_frame_index();
    let init: Vec<Vec<gdf::algebra::Logic3>> = filled[..fast - 1]
        .iter()
        .map(|v| {
            v.iter()
                .map(|&b| gdf::algebra::Logic3::from_bool(b))
                .collect()
        })
        .collect();
    let sim = gdf::sim::GoodSimulator::new(&circuit);
    let (_frames, st) = sim.run(&sim.initial_state(), &init);
    let state1: Vec<bool> = st
        .iter()
        .map(|l| l.to_bool().unwrap_or_else(|| rng.gen()))
        .collect();
    let w = two_frame_values(&circuit, &filled[fast - 1], &filled[fast], &state1);

    println!("\ntwo-frame waveform of the fast frame (clean values):");
    for node in circuit.nodes() {
        let id = circuit.node_by_name(node.name()).expect("name");
        println!("  {:<4} = {}", node.name(), w[id.index()]);
    }
    println!(
        "\n(transitions R/F provoke delay faults; 0h/1h mark hazards that \
         the robust model refuses to rely on)"
    );
}
