//! A persistent, resumable multi-circuit campaign end to end:
//!
//! 1. run the stuck-at engine over a mix of suite and embedded circuits,
//!    streaming campaign-cumulative progress;
//! 2. persist one artifact per circuit, then re-run the campaign with
//!    `resume(true)` and watch it satisfy every circuit from disk;
//! 3. export a pattern set from one run artifact and re-grade it with
//!    the packed fault simulator.
//!
//! ```text
//! cargo run --release --example campaign
//! ```

use gdf::core::{
    grade_patterns, Atpg, Backend, Campaign, CircuitReport, ModelKind, Observer, PatternSet,
};
use gdf::netlist::{suite, FaultUniverse};

struct Progress;

impl Observer for Progress {
    fn on_run_start(
        &mut self,
        engine: &'static str,
        circuit: &gdf::netlist::Circuit,
        total: usize,
    ) {
        println!("  [{engine}] {} — {total} faults", circuit.name());
    }
    fn on_progress(&mut self, decided: usize, total: usize) {
        if decided == total {
            println!("  … campaign {decided}/{total} faults decided");
        }
    }
    fn on_run_end(&mut self, report: &CircuitReport) {
        println!("  done: {}", report.row);
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("gdf-campaign-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. A fresh campaign: one config, one worker pool, many circuits.
    println!("first campaign (artifacts -> {}):", dir.display());
    let report = Campaign::builder()
        .backend(Backend::StuckAt)
        .circuit(suite::s27())
        .circuits(suite::extra_suite()) // the embedded .bench circuits
        .parallelism(2)
        .artifact_dir(&dir)
        .observer(Progress)
        .run();
    println!("\n{}", report.render());

    // 2. Same campaign again, resuming: everything loads from disk.
    let rerun = Campaign::builder()
        .backend(Backend::StuckAt)
        .circuit(suite::s27())
        .circuits(suite::extra_suite())
        .artifact_dir(&dir)
        .resume(true)
        .run();
    println!(
        "re-run: {} of {} circuits satisfied from artifacts in {:?}",
        rerun.resumed,
        rerun.circuits.len(),
        rerun.elapsed
    );

    // 3. Pattern export + independent re-grading (delay-fault flow).
    let c = suite::s27();
    let seed = 0x1995_0308;
    let run = Atpg::builder(&c)
        .backend(Backend::NonScan)
        .seed(seed)
        .build()
        .run();
    let patterns = PatternSet::from_run(&c, &run, "non-scan", seed, None);
    let grade = grade_patterns(
        &c,
        &patterns,
        ModelKind::Delay,
        &FaultUniverse::default(),
        seed,
    )
    .unwrap();
    println!("\nre-graded exported patterns: {grade}");

    let _ = std::fs::remove_dir_all(&dir);
}
