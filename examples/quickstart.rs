//! Quickstart: run the full non-scan delay-fault ATPG on the real ISCAS'89
//! s27 benchmark and inspect the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gdf::core::{Atpg, Backend, DelayAtpg, FaultClassification};
use gdf::netlist::suite;

fn main() {
    // The exact s27 netlist ships with the library; any ISCAS'89 `.bench`
    // file can be loaded with `gdf::netlist::parse_bench`.
    let circuit = suite::s27();
    println!("circuit {}: {}", circuit.name(), circuit.stats());

    // Run the combined TDgen + SEMILET system with the paper's limits
    // (100 backtracks per engine) through the unified builder. The same
    // builder also constructs the enhanced-scan and stuck-at backends.
    let run = Atpg::builder(&circuit)
        .backend(Backend::NonScan)
        .build()
        .run();

    println!("\n{}", gdf::core::CircuitReport::header());
    println!("{}", run.report.row);
    println!(
        "({} faults credited by fault simulation, {} explicit sequences)",
        run.report.dropped_by_simulation, run.report.sequences
    );

    // Show one complete test: initialization frames run at the slow clock,
    // the V1→V2 launch/capture pair at the fast (rated) clock, and the
    // propagation frames at the slow clock again (Figure 2 of the paper).
    if let Some(record) = run
        .records
        .iter()
        .find(|r| r.classification == FaultClassification::Tested && !r.by_simulation)
    {
        let seq = &run.sequences[record.sequence_index.expect("tested")];
        println!(
            "\nexample test for {}:\n  {} frame(s): {}",
            record.fault.describe(&circuit),
            seq.len(),
            seq
        );
        println!(
            "  ({} init, launch/capture pair, {} propagation)",
            seq.init_len(),
            seq.propagation_len()
        );
    }

    // Static compaction: drop sequences other sequences already cover.
    let compact = gdf::core::compact_sequences(&DelayAtpg::new(&circuit), &run);
    println!(
        "\ncompaction: {} → {} sequences, {} → {} vectors ({:.0}% fewer)",
        run.sequences.len(),
        compact.kept.len(),
        compact.patterns_before,
        compact.patterns_after,
        100.0 * compact.reduction()
    );

    // Per-classification listing.
    for class in [
        FaultClassification::Tested,
        FaultClassification::Untestable,
        FaultClassification::Aborted,
    ] {
        let names: Vec<String> = run
            .records
            .iter()
            .filter(|r| r.classification == class)
            .take(6)
            .map(|r| r.fault.describe(&circuit))
            .collect();
        println!("\nfirst {class:?} faults: {}", names.join(", "));
    }
}
