//! Delay-fault ATPG on a hand-written traffic-light controller — the kind
//! of FSM the ISCAS'89 benchmark s298 models.
//!
//! The controller is a 2-bit one-hot-ish Moore machine: it cycles
//! RED → GREEN → YELLOW → RED, with a `hold` input freezing the current
//! state (e.g. a pedestrian button latch). Every line in the next-state
//! and output logic is targeted with slow-to-rise and slow-to-fall faults;
//! a delay fault here means a light changes a cycle late — precisely the
//! failure mode gate delay testing is for.
//!
//! ```text
//! cargo run --example traffic_light_atpg
//! ```

use gdf::core::{Atpg, FaultClassification};
use gdf::netlist::{Circuit, CircuitBuilder, GateKind};

/// state encoding: (s1, s0): 00 = RED, 01 = GREEN, 10 = YELLOW.
/// A synchronous reset forces RED — without it, nothing would be
/// synchronizable from the unknown power-up state (try deleting it!).
fn traffic_light() -> Circuit {
    let mut b = CircuitBuilder::new("traffic");
    b.add_input("hold");
    b.add_input("rst");
    b.add_dff("s0", "d0");
    b.add_dff("s1", "d1");

    b.add_gate("nhold", GateKind::Not, &["hold"]);
    b.add_gate("nrst", GateKind::Not, &["rst"]);
    b.add_gate("ns0", GateKind::Not, &["s0"]);
    b.add_gate("ns1", GateKind::Not, &["s1"]);

    // next s0 = !rst & (!hold & RED | hold & s0)   (advance RED→GREEN)
    b.add_gate("red", GateKind::And, &["ns0", "ns1"]);
    b.add_gate("adv0", GateKind::And, &["nhold", "red"]);
    b.add_gate("hld0", GateKind::And, &["hold", "s0"]);
    b.add_gate("upd0", GateKind::Or, &["adv0", "hld0"]);
    b.add_gate("d0", GateKind::And, &["upd0", "nrst"]);

    // next s1 = !rst & (!hold & GREEN | hold & s1) (advance GREEN→YELLOW)
    b.add_gate("green", GateKind::And, &["s0", "ns1"]);
    b.add_gate("adv1", GateKind::And, &["nhold", "green"]);
    b.add_gate("hld1", GateKind::And, &["hold", "s1"]);
    b.add_gate("upd1", GateKind::Or, &["adv1", "hld1"]);
    b.add_gate("d1", GateKind::And, &["upd1", "nrst"]);

    // Light outputs (Moore).
    b.add_gate("light_red", GateKind::Buf, &["red"]);
    b.add_gate("light_green", GateKind::Buf, &["green"]);
    b.add_gate("light_yellow", GateKind::Buf, &["s1"]);
    b.mark_output("light_red");
    b.mark_output("light_green");
    b.mark_output("light_yellow");
    b.build().expect("valid FSM")
}

fn main() {
    let circuit = traffic_light();
    println!("circuit {}: {}", circuit.name(), circuit.stats());

    let run = Atpg::builder(&circuit).build().run();
    println!("\n{}", gdf::core::CircuitReport::header());
    println!("{}", run.report.row);

    // How long are the sequences? FSM state must be synchronized first
    // (driving to RED takes up to two advance cycles), so tests are
    // genuinely sequential.
    let longest = run
        .sequences
        .iter()
        .max_by_key(|s| s.len())
        .expect("some test exists");
    println!(
        "\nlongest sequence: {} frames ({} init / pair / {} propagation)\n  {}",
        longest.len(),
        longest.init_len(),
        longest.propagation_len(),
        longest
    );

    // The untestable list shows the robust-model pessimism the paper
    // discusses: reconvergent hold/advance logic creates hazards.
    let untestable: Vec<String> = run
        .records
        .iter()
        .filter(|r| r.classification == FaultClassification::Untestable)
        .map(|r| r.fault.describe(&circuit))
        .collect();
    println!(
        "\n{} robustly untestable faults: {}",
        untestable.len(),
        untestable.join(", ")
    );
}
