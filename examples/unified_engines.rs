//! The unified engine API end to end: one builder, three backends, a
//! streaming observer, and deterministic fault-parallel orchestration.
//!
//! ```text
//! cargo run --release --example unified_engines
//! ```

use gdf::core::{Atpg, AtpgEngine, Backend, CircuitReport, FaultRecord, Observer};
use gdf::netlist::suite;
use std::time::Duration;

/// A progress bar that also shows the per-fault stream arriving before
/// the run finishes — the point of the `Observer` trait.
#[derive(Default)]
struct Progress {
    last_percent: u64,
    streamed: usize,
}

impl Observer for Progress {
    fn on_run_start(
        &mut self,
        engine: &'static str,
        circuit: &gdf::netlist::Circuit,
        total: usize,
    ) {
        println!("[{engine}] {}: {total} faults", circuit.name());
    }

    fn on_fault(&mut self, _record: &FaultRecord) {
        self.streamed += 1;
    }

    fn on_progress(&mut self, decided: usize, total: usize) {
        let percent = (100 * decided / total.max(1)) as u64;
        if percent / 25 > self.last_percent / 25 {
            println!("  … {percent}% ({decided}/{total})");
            self.last_percent = percent;
        }
    }

    fn on_run_end(&mut self, report: &CircuitReport) {
        println!(
            "  done: {} streamed records, {} sequences",
            self.streamed, report.sequences
        );
    }
}

fn main() {
    let circuit = suite::table3_circuit("s298").expect("suite circuit");
    println!("circuit {}: {}\n", circuit.name(), circuit.stats());

    // One builder, three backends, one trait.
    println!("{}", CircuitReport::header());
    for backend in [Backend::NonScan, Backend::EnhancedScan, Backend::StuckAt] {
        let mut engine: Box<dyn AtpgEngine> = Atpg::builder(&circuit).backend(backend).build();
        let run = engine.run();
        println!("{}  [{}]", run.report.line(), engine.name());
    }

    // Streaming observation: records arrive while the run executes.
    println!();
    let mut engine = Atpg::builder(&circuit)
        .backend(Backend::NonScan)
        .observer(Progress::default())
        .build();
    let _ = engine.run();

    // Fault-parallel orchestration: same results, fewer seconds.
    println!();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let serial = Atpg::builder(&circuit)
        .backend(Backend::NonScan)
        .build()
        .run();
    let parallel = Atpg::builder(&circuit)
        .backend(Backend::NonScan)
        .parallelism(threads)
        .build()
        .run();
    assert_eq!(serial.records, parallel.records, "deterministic merge");
    assert_eq!(serial.sequences, parallel.sequences);
    println!(
        "serial {:?} vs parallelism({threads}) {:?} — identical {} records",
        serial.report.row.elapsed,
        parallel.report.row.elapsed,
        serial.records.len()
    );

    // Time budgets stop a run gracefully: the rest is classified aborted.
    let budgeted = Atpg::builder(&circuit)
        .backend(Backend::NonScan)
        .time_budget(Duration::from_millis(5))
        .build()
        .run();
    println!(
        "5 ms budget: stopped={:?}, {} tested / {} aborted",
        budgeted.stopped, budgeted.report.row.tested, budgeted.report.row.aborted
    );
}
