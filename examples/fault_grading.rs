//! Random-pattern robust delay-fault *grading* versus deterministic ATPG.
//!
//! Fault grading answers "how many delay faults would N random two-pattern
//! tests catch?" — the cheap baseline every deterministic generator must
//! beat. This example grades random vector pairs on a synthetic benchmark
//! (using the same TDsim critical-path-tracing semantics as the ATPG) and
//! compares against the deterministic run.
//!
//! ```text
//! cargo run --release --example fault_grading
//! ```

use gdf::core::Atpg;
use gdf::netlist::{suite, FaultUniverse};
use gdf::sim::{detected_delay_faults, two_frame_values};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let circuit = suite::table3_circuit("s208").expect("profile exists");
    println!("circuit {}: {}", circuit.name(), circuit.stats());
    let faults = FaultUniverse::default().delay_faults(&circuit);
    println!("fault universe: {} gate delay faults", faults.len());

    // Random grading: apply (V1, V2) pairs from a random but *known* state
    // (as if the machine had been synchronized beforehand), observe POs
    // only. This is optimistic for random testing — and it still loses.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut detected = vec![false; faults.len()];
    let budget: usize = 512;
    let mut curve: Vec<(usize, usize)> = Vec::new();
    for n in 1..=budget {
        let v1: Vec<bool> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
        let v2: Vec<bool> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
        let st: Vec<bool> = (0..circuit.num_dffs()).map(|_| rng.gen()).collect();
        let w = two_frame_values(&circuit, &v1, &v2, &st);
        let undecided: Vec<usize> = (0..faults.len()).filter(|&i| !detected[i]).collect();
        let cand: Vec<_> = undecided.iter().map(|&i| faults[i]).collect();
        for (k, _) in detected_delay_faults(&circuit, &w, &cand, &[], &[]) {
            detected[undecided[k]] = true;
        }
        if n.is_power_of_two() || n == budget {
            curve.push((n, detected.iter().filter(|&&d| d).count()));
        }
    }

    println!("\nrandom two-pattern grading (PO observation, known state):");
    for (n, d) in &curve {
        println!(
            "  {:>4} pairs: {:>4}/{} robustly detected ({:.1}%)",
            n,
            d,
            faults.len(),
            100.0 * *d as f64 / faults.len() as f64
        );
    }

    // Deterministic ATPG for comparison (real rules: unknown power-up
    // state, sequential observation only via propagation).
    let run = Atpg::builder(&circuit).build().run();
    println!("\ndeterministic non-scan ATPG:");
    println!("{}", gdf::core::CircuitReport::header());
    println!("{}", run.report.row);
    println!(
        "\nnote the asymmetry: random grading here assumes free state\n\
         control/observation, while the ATPG plays by the non-scan rules —\n\
         and still proves {} faults untestable that random testing would\n\
         wait on forever.",
        run.report.row.untestable
    );
}
