//! Synchronization and propagation through deep state: a gated shift
//! register.
//!
//! Faults near the serial input of an n-stage shift register are the
//! textbook case for non-scan sequential delay testing: the two-pattern
//! test itself is trivial, but the required state must be *shifted in*
//! (initialization, n frames) and the latched fault effect must be
//! *shifted out* (propagation, n frames). This example shows both phases
//! of the FOGBUSTER flow doing exactly that.
//!
//! ```text
//! cargo run --example shift_register_sync
//! ```

use gdf::algebra::static5::{StaticSet, StaticValue};
use gdf::core::Atpg;
use gdf::netlist::generator::shift_register;
use gdf::semilet::justify::{synchronize, SyncLimits};
use gdf::semilet::propagate::{propagate_to_po, PropagateLimits, PropagateOutcome};

fn main() {
    let n = 4;
    let circuit = shift_register(n);
    println!("circuit {}: {}", circuit.name(), circuit.stats());

    // --- The initialization phase in isolation -------------------------
    // Force the last stage to 1: the synchronizer must discover the
    // n-frame shift-in sequence.
    let outcome = synchronize(&circuit, &[(n - 1, true)], SyncLimits::default());
    let seq = outcome.sequence().expect("shift registers synchronize");
    println!(
        "\nsynchronizing q{} := 1 takes {} frames (si/en per frame):",
        n - 1,
        seq.len()
    );
    for (k, v) in seq.iter().enumerate() {
        println!("  frame {k}: si={} en={}", v[0], v[1]);
    }

    // --- The propagation phase in isolation ----------------------------
    // A fault effect latched in stage 0 must shift n frames to the output.
    let mut start = vec![StaticSet::singleton(StaticValue::S0); n];
    start[0] = StaticSet::singleton(StaticValue::D);
    match propagate_to_po(&circuit, &start, PropagateLimits::default()) {
        PropagateOutcome::Propagated(p) => {
            println!(
                "\npropagating a D from q0 to the output takes {} frames \
                 (relies on {} known state bits)",
                p.vectors.len(),
                p.relied_dffs.len()
            );
        }
        other => panic!("unexpected: {other:?}"),
    }

    // --- The full system ------------------------------------------------
    let run = Atpg::builder(&circuit).build().run();
    println!("\n{}", gdf::core::CircuitReport::header());
    println!("{}", run.report.row);
    let max_len = run.sequences.iter().map(|s| s.len()).max().unwrap_or(0);
    println!(
        "longest emitted sequence: {max_len} frames — deep state costs \
         patterns, which is why the paper's #pat column counts init and \
         propagation too"
    );
}
