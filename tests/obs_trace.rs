//! Tracing over the real server stack:
//!
//! 1. **Propagation** — a caller-supplied `X-Gdf-Trace` context becomes
//!    the job's trace identity, shows up in the verbose status, and
//!    roots the NDJSON trace document on disk.
//! 2. **Chrome export** — the document a real run writes converts to
//!    chrome://tracing JSON.
//! 3. **Torn trace writes are harmless** — under [`ChaosDisk`] aimed at
//!    the traces directory, trace documents may be lost or truncated,
//!    but every job still completes to artifact bytes identical to a
//!    clean local run. Tracing is strictly a side channel.

use gdf::chaos::{ChaosDisk, ChaosGuard, ChaosSchedule};
use gdf::core::{Atpg, Backend, CircuitSource, RunArtifact, RunConfig};
use gdf::netlist::suite;
use gdf::obs::{chrome_trace, TraceCtx, TraceEvent};
use gdf::serve::server::submission_for_suite;
use gdf::serve::{Client, JobServer, ServeConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-obst-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(dir: &PathBuf, workers: usize) -> (JobServer, Client) {
    let server = JobServer::start(ServeConfig::new("127.0.0.1:0", dir).with_workers(workers))
        .expect("server starts");
    let client = Client::new(server.local_addr().to_string());
    (server, client)
}

fn local_canonical(config: RunConfig) -> String {
    let circuit = suite::s27();
    let run = Atpg::builder(&circuit)
        .backend(config.backend)
        .seed(config.seed)
        .build()
        .run();
    RunArtifact::from_run(
        &circuit,
        &run,
        config,
        Some(CircuitSource::suite(&circuit, "s27")),
    )
    .canonical_encode()
}

#[test]
fn submitted_trace_context_roots_the_job_trace_and_exports_to_chrome() {
    let dir = temp_dir("prop");
    let (server, client) = start_server(&dir, 2);
    let config = RunConfig::new(Backend::NonScan);
    let campaign = TraceCtx::root("test-campaign:obs");
    let unit = campaign.child("unit-0");

    let id = client
        .submit_traced(&submission_for_suite("suite:s27", &config), Some(&unit))
        .expect("submit");
    client
        .wait(
            id,
            Duration::from_millis(25),
            Some(Duration::from_secs(120)),
        )
        .expect("job finishes");

    // The verbose status carries the propagated identity verbatim, and
    // the profile side channel recorded real work.
    let status = client.status(id).expect("status");
    assert_eq!(
        status.get("trace").and_then(gdf::core::json::Json::as_str),
        Some(unit.header_value().as_str()),
        "job did not adopt the caller's trace context: {status}"
    );
    let wall_us = status
        .get("profile")
        .and_then(|p| p.get("wall_us"))
        .and_then(gdf::core::json::Json::as_u64)
        .expect("profile block on a finished job");
    assert!(wall_us > 0);

    // The on-disk document: the root span IS the propagated context,
    // every line parses, and the engine stages appear as child spans.
    let path = dir.join("traces").join(format!("job-{id}.ndjson"));
    let doc = std::fs::read_to_string(&path).expect("trace document written");
    let events: Vec<TraceEvent> = doc
        .lines()
        .map(|l| TraceEvent::decode_line(l).unwrap_or_else(|| panic!("bad line {l}")))
        .collect();
    assert!(events.len() >= 2, "root plus at least one stage span");
    assert_eq!(events[0].trace, unit.trace);
    assert_eq!(events[0].span, unit.span);
    assert_eq!(events[0].parent, None);
    for e in &events[1..] {
        assert_eq!(e.trace, unit.trace, "span left the trace: {e:?}");
        assert_eq!(e.parent, Some(unit.span));
    }
    for stage in ["parse", "generate", "fsim", "publish"] {
        assert!(
            events.iter().any(|e| e.name == stage),
            "no {stage} span in {doc}"
        );
    }

    // And it converts to chrome://tracing form, one event per line.
    let chrome = chrome_trace(&doc).expect("chrome export");
    let n = chrome
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .map(|e| e.len());
    assert_eq!(n, Some(events.len()));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_trace_writes_never_corrupt_a_job_or_its_artifact() {
    let dir = temp_dir("torn");
    // Chaos aimed at the traces directory only: the trace write is the
    // one persistence step allowed to fail silently.
    let traces = dir.join("traces");
    std::fs::create_dir_all(&traces).unwrap();
    let (server, client) = start_server(&dir, 2);

    let schedule = Arc::new(ChaosSchedule::new(0x0B5, 0.9));
    let mut configs = Vec::new();
    {
        let _guard = ChaosGuard::install(ChaosDisk::new(Arc::clone(&schedule), &traces));
        for seed in 0..4u64 {
            let mut config = RunConfig::new(Backend::NonScan);
            config.seed = 0x1995 + seed;
            let id = client
                .submit(&submission_for_suite("suite:s27", &config))
                .expect("submit");
            let finished = client
                .wait(
                    id,
                    Duration::from_millis(25),
                    Some(Duration::from_secs(120)),
                )
                .expect("job finishes under trace chaos");
            assert_eq!(
                finished
                    .get("state")
                    .and_then(gdf::core::json::Json::as_str),
                Some("done"),
                "trace-write chaos failed a job: {finished}"
            );
            configs.push((id, config));
        }
        assert!(schedule.injected() > 0, "chaos actually fired");
    }

    for (id, config) in &configs {
        // The artifact is byte-identical to a clean local run — torn
        // trace documents cost visibility, never correctness.
        assert_eq!(
            client.artifact(*id).expect("artifact"),
            local_canonical(*config),
            "job {id}: artifact corrupted by trace chaos"
        );
        // Whatever survived on disk is either absent, or a document the
        // exporter handles: valid lines convert, torn tails are skipped,
        // and an all-torn document is a clean typed error.
        let path = traces.join(format!("job-{id}.ndjson"));
        if let Ok(doc) = std::fs::read_to_string(&path) {
            match chrome_trace(&doc) {
                Ok(chrome) => assert!(chrome.get("traceEvents").is_some()),
                Err(e) => assert!(!e.is_empty()),
            }
        }
    }

    // Chaos lifted: the next job's trace lands intact.
    let mut config = RunConfig::new(Backend::NonScan);
    config.seed = 0x7777;
    let id = client
        .submit(&submission_for_suite("suite:s27", &config))
        .expect("submit");
    client
        .wait(
            id,
            Duration::from_millis(25),
            Some(Duration::from_secs(120)),
        )
        .expect("job finishes");
    let doc = std::fs::read_to_string(traces.join(format!("job-{id}.ndjson")))
        .expect("trace written once chaos lifts");
    assert!(chrome_trace(&doc).is_ok());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
