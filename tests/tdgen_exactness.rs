//! Cross-validation of TDgen against brute force.
//!
//! For s27 (small enough to enumerate every `(V1, V2, S1)` triple) the
//! complete TDgen search must agree *exactly* with exhaustive simulation:
//! a fault is locally testable iff some triple robustly detects it at a PO
//! or latches a definite, known-polarity effect at a PPO. This pins down
//! both soundness (every generated test is real) and completeness (every
//! `Untestable` verdict is a true redundancy proof).

use gdf_netlist::{suite, FaultUniverse, NodeId};
use gdf_sim::{detected_delay_faults, two_frame_values};
use gdf_tdgen::{TdGen, TdGenOutcome};

#[test]
fn tdgen_matches_brute_force_on_s27() {
    let c = suite::s27();
    let faults = FaultUniverse::default().delay_faults(&c);
    let all_ppos: Vec<NodeId> = c.ppos().to_vec();

    // Brute force: which faults have *some* robust local test?
    let mut testable = vec![false; faults.len()];
    for v1pat in 0u32..16 {
        for v2pat in 0u32..16 {
            for spat in 0u32..8 {
                let v1: Vec<bool> = (0..4).map(|i| v1pat & (1 << i) != 0).collect();
                let v2: Vec<bool> = (0..4).map(|i| v2pat & (1 << i) != 0).collect();
                let st: Vec<bool> = (0..3).map(|i| spat & (1 << i) != 0).collect();
                let w = two_frame_values(&c, &v1, &v2, &st);
                for (idx, _) in detected_delay_faults(&c, &w, &faults, &all_ppos, &[]) {
                    testable[idx] = true;
                }
            }
        }
    }

    let gen = TdGen::new(&c);
    for (i, &fault) in faults.iter().enumerate() {
        let outcome = gen.generate(fault);
        match outcome {
            TdGenOutcome::Test(_) => {
                assert!(
                    testable[i],
                    "TDgen found a test for {} but brute force says untestable",
                    fault.describe(&c)
                );
            }
            TdGenOutcome::Untestable => {
                assert!(
                    !testable[i],
                    "TDgen claims {} untestable but brute force found a test",
                    fault.describe(&c)
                );
            }
            TdGenOutcome::Aborted => {
                panic!("s27 must not abort ({})", fault.describe(&c));
            }
        }
    }
}
