//! End-to-end integration tests across all crates: the extended-FOGBUSTER
//! driver on suite circuits, with every emitted sequence re-verified by
//! the independent simulation stack.

use gdf::algebra::Logic3;
use gdf::core::{DelayAtpg, DelayAtpgConfig, FaultClassification};
use gdf::netlist::{suite, NodeId};
use gdf::sim::{detected_delay_faults, two_frame_values, GoodSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Re-simulates one emitted sequence and checks the target fault is
/// robustly detected, under a given X-fill seed.
fn verify_sequence(
    circuit: &gdf::netlist::Circuit,
    seq: &gdf::core::TestSequence,
    fault: gdf::netlist::DelayFault,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let filled = seq.filled_with(|| rng.gen());
    let fast = seq.fast_frame_index();
    let init: Vec<Vec<Logic3>> = filled[..fast - 1]
        .iter()
        .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
        .collect();
    let sim = GoodSimulator::new(circuit);
    let (_frames, st) = sim.run(&sim.initial_state(), &init);
    let state1: Vec<bool> = st
        .iter()
        .map(|l| l.to_bool().unwrap_or_else(|| rng.gen()))
        .collect();
    let w = two_frame_values(circuit, &filled[fast - 1], &filled[fast], &state1);
    let all_ppos: Vec<NodeId> = circuit.ppos().to_vec();
    let obs: &[NodeId] = if seq.propagation_len() > 0 {
        &all_ppos
    } else {
        &[]
    };
    let hits = detected_delay_faults(circuit, &w, &[fault], obs, &[]);
    assert_eq!(
        hits.len(),
        1,
        "sequence fails to detect {} (seed {seed})",
        fault.describe(circuit)
    );
}

#[test]
fn s27_every_explicit_sequence_verified() {
    let circuit = suite::s27();
    let run = DelayAtpg::new(&circuit).run();
    assert!(run.report.row.tested > 0);
    for record in &run.records {
        if record.classification == FaultClassification::Tested && !record.by_simulation {
            let seq = &run.sequences[record.sequence_index.expect("tested")];
            for seed in [1u64, 2, 3] {
                let fault = record.fault.as_delay().expect("delay run");
                verify_sequence(&circuit, seq, fault, seed);
            }
        }
    }
}

#[test]
fn s298_syn_pipeline_produces_tests() {
    let circuit = suite::table3_circuit("s298").expect("suite circuit");
    let run = DelayAtpg::new(&circuit).run();
    let row = &run.report.row;
    assert_eq!(row.total_faults() as usize, run.records.len());
    assert!(row.tested > 0, "s298_syn must yield tests");
    assert!(
        row.untestable > row.tested,
        "robust-model pessimism dominates on state-heavy circuits (paper §6)"
    );
    // Verify a sample of explicit sequences end to end.
    let mut checked = 0;
    for record in run.records.iter().filter(|r| !r.by_simulation) {
        if record.classification == FaultClassification::Tested {
            let seq = &run.sequences[record.sequence_index.expect("tested")];
            let fault = record.fault.as_delay().expect("delay run");
            verify_sequence(&circuit, seq, fault, 7);
            checked += 1;
            if checked >= 10 {
                break;
            }
        }
    }
    assert!(checked > 0);
}

#[test]
fn deterministic_reruns_are_identical() {
    let circuit = suite::s27();
    let a = DelayAtpg::new(&circuit).run();
    let b = DelayAtpg::new(&circuit).run();
    assert_eq!(a.report.row.tested, b.report.row.tested);
    assert_eq!(a.report.row.untestable, b.report.row.untestable);
    assert_eq!(a.report.row.aborted, b.report.row.aborted);
    assert_eq!(a.sequences.len(), b.sequences.len());
    for (x, y) in a.sequences.iter().zip(&b.sequences) {
        assert_eq!(x, y);
    }
}

#[test]
fn pattern_counts_include_init_and_propagation() {
    // Paper: "The number of patterns generated as shown in the fifth
    // column includes the patterns needed for initialization and
    // propagation."
    let circuit = suite::s27();
    let run = DelayAtpg::new(&circuit).run();
    let total: usize = run.sequences.iter().map(|s| s.len()).sum();
    assert_eq!(run.report.row.patterns as usize, total);
    // And the per-sequence split is consistent.
    for seq in &run.sequences {
        assert_eq!(seq.len(), seq.init_len() + 2 + seq.propagation_len());
    }
}

#[test]
fn reduced_universe_is_subset_accounting() {
    let circuit = suite::s27();
    let full = DelayAtpg::new(&circuit).run();
    let stems = DelayAtpg::with_config(
        &circuit,
        DelayAtpgConfig::new().with_universe(gdf::netlist::FaultUniverse::stems_only()),
    )
    .run();
    assert!(stems.records.len() < full.records.len());
    assert_eq!(
        stems.records.len(),
        gdf::netlist::FaultUniverse::stems_only()
            .delay_faults(&circuit)
            .len()
    );
}
