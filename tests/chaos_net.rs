//! Wire chaos against the serve client and a live node.
//!
//! The first half pins the client's retry contract with a hand-rolled
//! misbehaving listener (deterministic, no schedule): idempotent GETs
//! retry truncated responses, non-idempotent verbs fail hard, and a
//! `503 + Retry-After` (the drain verdict) returns immediately instead
//! of burning backoff. The second half runs a real `gdf-serve` node
//! behind a [`ChaosProxy`] and asserts the job API converges to the
//! same artifact bytes a calm network produces.

use gdf::chaos::{ChaosProxy, ChaosSchedule};
use gdf::core::{Atpg, Backend, CircuitSource, RunArtifact, RunConfig};
use gdf::netlist::suite;
use gdf::serve::server::submission_for_suite;
use gdf::serve::{Client, JobServer, ServeConfig, ServeError};
use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-chaosn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A listener that answers its first `broken` connections with `reply`
/// cut short (write + close), then answers everything else with a full
/// well-formed 200. Counts connections. The thread serves until the
/// process exits: retiring after one good answer races against client
/// read timeouts under CPU starvation (a stale backlogged connection
/// can consume the good reply, and the next retry finds the port dead).
fn flaky_listener(
    broken: usize,
    truncated_reply: &'static str,
) -> (String, Arc<AtomicUsize>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let connections = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&connections);
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let n = seen.fetch_add(1, Ordering::AcqRel);
            if n < broken {
                let _ = stream.write_all(truncated_reply.as_bytes());
                // Close mid-response.
                continue;
            }
            let _ = stream.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
                  Content-Length: 3\r\nConnection: close\r\n\r\nok\n",
            );
        }
    });
    (addr, connections, handle)
}

#[test]
fn truncated_gets_retry_to_success() {
    // Two truncated bodies (Content-Length promises more than arrives),
    // then a good one: an idempotent GET must ride through.
    let (addr, connections, _handle) =
        flaky_listener(2, "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\npartial-");
    let text = Client::new(addr)
        .with_retries(5)
        .with_timeout(Duration::from_secs(5))
        .metrics()
        .expect("GET retries truncated responses");
    assert_eq!(text, "ok\n");
    // Exactly 3 on a quiet machine (two truncated + one good); a
    // starved run may burn extra attempts on read timeouts, which is
    // the retry contract working, not a violation of it.
    assert!(
        connections.load(Ordering::Acquire) >= 3,
        "both truncated responses were retried"
    );
}

#[test]
fn truncated_posts_fail_hard() {
    // The same truncation on a POST is a hard error — the request may
    // have been applied server-side, so retrying could duplicate work.
    let (addr, connections, _handle) = flaky_listener(
        usize::MAX,
        "HTTP/1.1 201 Created\r\nContent-Length: 50\r\n\r\n{\"id\"",
    );
    let submission = submission_for_suite("suite:s27", &RunConfig::new(Backend::StuckAt));
    let result = Client::new(addr)
        .with_retries(5)
        .with_timeout(Duration::from_secs(5))
        .submit(&submission);
    assert!(matches!(result, Err(ServeError::Http(_))), "{result:?}");
    assert_eq!(
        connections.load(Ordering::Acquire),
        1,
        "a dead mid-body POST must not be retried"
    );
}

#[test]
fn retry_after_503_returns_immediately() {
    // A drain verdict: 503 with Retry-After. The client must surface it
    // on the first attempt instead of sleeping through its backoff.
    let (addr, connections, _handle) = flaky_listener(0, "");
    // Replace the good responder: build a dedicated one-shot listener.
    drop((addr, connections));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let connections = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&connections);
    let _handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            seen.fetch_add(1, Ordering::AcqRel);
            let body = b"{\"error\":\"server is draining; resubmit elsewhere\"}\n";
            let _ = write!(
                stream,
                "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\nRetry-After: 5\r\n\r\n",
                body.len()
            );
            let _ = stream.write_all(body);
        }
    });
    let started = std::time::Instant::now();
    let submission = submission_for_suite("suite:s27", &RunConfig::new(Backend::StuckAt));
    let result = Client::new(addr)
        .with_retries(5)
        .with_timeout(Duration::from_secs(5))
        .submit(&submission);
    match result {
        Err(ServeError::Api {
            status: 503,
            message,
            retry_after,
        }) => {
            assert!(message.contains("draining"), "{message}");
            assert_eq!(retry_after, Some(5), "the drain hint must survive");
        }
        other => panic!("expected the drain 503, got {other:?}"),
    }
    assert_eq!(connections.load(Ordering::Acquire), 1, "no retries burned");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "the drain verdict must not sleep through backoff"
    );
}

#[test]
fn job_api_through_a_chaos_proxy_converges_to_clean_bytes() {
    let config = RunConfig::new(Backend::StuckAt);
    let dir = temp_dir("proxy-node");
    let node = JobServer::start(ServeConfig::new("127.0.0.1:0", &dir).with_workers(2)).unwrap();
    let schedule = Arc::new(ChaosSchedule::new(0xA5A5, 0.35));
    let mut proxy = ChaosProxy::start(
        node.local_addr(),
        Arc::clone(&schedule),
        Duration::from_millis(100),
    )
    .unwrap();
    let client = Client::new(proxy.local_addr().to_string())
        .with_retries(8)
        .with_timeout(Duration::from_secs(2));

    // Submission is a POST: transport chaos surfaces as hard errors by
    // design, so drive it like the coordinator does — retry the verb at
    // the application layer (resubmitting after a *transport* error is
    // safe for an idempotent-by-content job spec: a duplicate submit
    // just enqueues a second identical job).
    let submission = submission_for_suite("suite:s27", &config);
    let mut id = None;
    for _ in 0..40 {
        match client.submit(&submission) {
            Ok(job) => {
                id = Some(job);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    let id = id.expect("submit eventually lands through the chaos");

    // Status polling and the artifact fetch are GETs: the client's
    // transport retries plus application-level patience ride out
    // drops, delays, truncations and black holes.
    let mut artifact_text = None;
    for _ in 0..800 {
        if let Ok(status) = client.status(id) {
            let state = status
                .get("state")
                .and_then(gdf::core::json::Json::as_str)
                .unwrap_or("");
            assert_ne!(state, "failed", "job failed under network chaos");
            if state == "done" {
                if let Ok(text) = client.artifact(id) {
                    artifact_text = Some(text);
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let artifact_text = artifact_text.expect("artifact fetched through the chaos");
    assert!(schedule.injected() > 0, "the proxy actually misbehaved");

    // The fetched bytes equal a clean in-process run's canonical bytes.
    let circuit = suite::s27();
    let run = Atpg::builder(&circuit)
        .backend(config.backend)
        .seed(config.seed)
        .build()
        .run();
    let reference = RunArtifact::from_run(
        &circuit,
        &run,
        config,
        Some(CircuitSource::suite(&circuit, "s27")),
    )
    .canonical_encode();
    let fetched = RunArtifact::decode(&artifact_text)
        .expect("fetched artifact decodes")
        .canonical_encode();
    assert_eq!(fetched, reference);

    proxy.stop();
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
