//! The serve layer's two headline guarantees, proven over real sockets:
//!
//! 1. **Concurrent-client determinism** — N parallel submissions of the
//!    same circuit/config/seed yield byte-identical canonical artifacts,
//!    identical to a local in-process run of the same spec.
//! 2. **Crash recovery** — a server killed mid-job and restarted on the
//!    same directory resumes the job from its checkpoint to a result
//!    byte-identical to an uninterrupted run.
//!
//! Plus the API's error contract (404/400/409) over the same wire.

use gdf::core::{
    Atpg, Backend, CircuitSource, Limits, PatternSet, ProgressEvent, RunArtifact, RunConfig,
};
use gdf::netlist::suite;
use gdf::serve::server::{submission_for_suite, submission_with_runtime};
use gdf::serve::{Client, JobServer, ServeConfig, ServeError};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(dir: &PathBuf, workers: usize) -> (JobServer, Client) {
    let server = JobServer::start(
        ServeConfig::new("127.0.0.1:0", dir)
            .with_workers(workers)
            .with_queue_capacity(16),
    )
    .expect("server starts");
    let client = Client::new(server.local_addr().to_string());
    (server, client)
}

/// What a local, in-process run of the same spec would persist — the
/// reference every remote result must match byte for byte. Parallelism
/// is a runtime knob, byte-identical to serial by the engine invariant.
fn local_canonical(suite_name: &str, config: RunConfig, parallelism: usize) -> String {
    let circuit = suite::by_name(suite_name).expect("suite circuit");
    let run = Atpg::builder(&circuit)
        .backend(config.backend)
        .model(config.model)
        .universe(config.universe)
        .limits(config.limits)
        .seed(config.seed)
        .parallelism(parallelism)
        .build()
        .run();
    RunArtifact::from_run(
        &circuit,
        &run,
        config,
        Some(CircuitSource::suite(&circuit, suite_name)),
    )
    .canonical_encode()
}

#[test]
fn eight_concurrent_clients_get_byte_identical_artifacts() {
    let dir = temp_dir("concurrent");
    let (server, client) = start_server(&dir, 4);
    let config = RunConfig::new(Backend::NonScan);
    let submission = submission_for_suite("suite:s27", &config);

    // 8 clients submit the same spec at once, each over its own
    // connections, racing 4 workers.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let client = client.clone();
            let submission = submission.clone();
            std::thread::spawn(move || {
                let id = client.submit(&submission)?;
                client.wait(
                    id,
                    Duration::from_millis(25),
                    Some(Duration::from_secs(120)),
                )?;
                Ok::<_, ServeError>((client.artifact(id)?, client.patterns(id)?))
            })
        })
        .collect();
    let results: Vec<(String, String)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread").expect("client calls"))
        .collect();

    let reference = local_canonical("s27", config, 1);
    for (i, (artifact, patterns)) in results.iter().enumerate() {
        assert_eq!(
            artifact, &reference,
            "client {i}: remote artifact differs from the local run"
        );
        assert_eq!(
            patterns, &results[0].1,
            "client {i}: pattern export differs between identical submissions"
        );
    }
    // The pattern wire form matches a local export as well.
    let circuit = suite::s27();
    let run = Atpg::builder(&circuit).build().run();
    let local_patterns = PatternSet::from_run(
        &circuit,
        &run,
        &config.backend.to_string(),
        config.seed,
        Some(CircuitSource::suite(&circuit, "s27")),
    )
    .encode();
    assert_eq!(results[0].1, local_patterns);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_and_restarted_server_resumes_to_an_uninterrupted_result() {
    let dir = temp_dir("killrestart");
    // The unoptimized (dev-profile) engine is ~20× slower on s208; trim
    // the search budgets and fault universe there so the test stays a
    // test, not a coffee break. The guarantee under test is
    // profile-independent.
    let mut config = RunConfig::new(Backend::NonScan);
    if cfg!(debug_assertions) {
        config.universe = gdf::netlist::FaultUniverse::stems_only();
        config.limits = Limits::new()
            .with_local_backtrack_limit(20)
            .with_sequential_backtrack_limit(10)
            .with_max_propagation_frames(8)
            .with_max_sync_frames(8)
            .with_max_observation_retries(1);
    }
    let workers = 4;

    // Submit the long-running s208 with a tight checkpoint cadence.
    let (server, client) = start_server(&dir, 1);
    let submission = submission_with_runtime(
        submission_for_suite("suite:s208", &config),
        workers,
        Some(4),
    );
    let id = client.submit(&submission).expect("submit");

    // Let it decide a meaningful prefix (checkpoints every 4 outcomes),
    // then kill the server at a fault boundary — disk state untouched.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(id).expect("status");
        let decided = status
            .get("decided")
            .and_then(gdf::core::json::Json::as_u64)
            .unwrap_or(0);
        let state = status
            .get("state")
            .and_then(gdf::core::json::Json::as_str)
            .unwrap_or("")
            .to_string();
        assert_ne!(state, "failed", "job failed before the kill: {status}");
        if decided >= 16 || state == "done" {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never progressed: {status}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    server.kill();

    // The persistent record still says the job is in flight.
    let record = std::fs::read_to_string(dir.join(format!("job-{id}/job.json"))).unwrap();
    assert!(
        record.contains("\"running\"") || record.contains("\"done\""),
        "unexpected on-disk state after kill: {record}"
    );

    // A fresh server on the same directory recovers and finishes it.
    let (server, client) = start_server(&dir, 2);
    let finished = client
        .wait(
            id,
            Duration::from_millis(50),
            Some(Duration::from_secs(300)),
        )
        .expect("resumed job finishes");
    assert_eq!(
        finished
            .get("state")
            .and_then(gdf::core::json::Json::as_str),
        Some("done"),
        "resumed job did not complete: {finished}"
    );
    let resumed = client.artifact(id).expect("artifact");
    assert_eq!(
        resumed,
        local_canonical("s208", config, workers),
        "kill + restart + resume diverged from an uninterrupted run"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn api_error_contract_and_event_stream() {
    let dir = temp_dir("api");
    let (server, client) = start_server(&dir, 2);
    let addr = server.local_addr().to_string();

    // Unknown job -> 404; malformed submissions -> 400; bad id -> 400.
    assert!(matches!(
        client.status(999),
        Err(ServeError::Api { status: 404, .. })
    ));
    for bad_body in ["{ not json", "{}", r#"{"circuit": "suite:missing"}"#] {
        let response = gdf::serve::http::client_request(
            &addr,
            "POST",
            "/jobs",
            Some(bad_body),
            Duration::from_secs(5),
        )
        .expect("http exchange");
        assert_eq!(response.status, 400, "body {bad_body:?}");
    }
    let response =
        gdf::serve::http::client_request(&addr, "GET", "/jobs/zzz", None, Duration::from_secs(5))
            .expect("http exchange");
    assert_eq!(response.status, 400);
    let response =
        gdf::serve::http::client_request(&addr, "PUT", "/jobs", None, Duration::from_secs(5))
            .expect("http exchange");
    assert_eq!(response.status, 405);

    // A healthy submission streams Started ... Finished and then serves
    // its artifact; asking for the artifact of an unfinished job is 409.
    let config = RunConfig::new(Backend::StuckAt);
    let id = client
        .submit(&submission_for_suite("suite:s27", &config))
        .expect("submit");
    let mut events = Vec::new();
    client
        .events(id, |event| {
            events.push(event);
            true
        })
        .expect("event stream");
    assert!(
        matches!(events.first(), Some(ProgressEvent::Started { engine, .. }) if engine == "stuck-at"),
        "unexpected first event: {:?}",
        events.first()
    );
    assert!(matches!(
        events.last(),
        Some(ProgressEvent::Finished { .. })
    ));
    let faults = events
        .iter()
        .filter(|e| matches!(e, ProgressEvent::Fault { .. }))
        .count();
    assert!(faults > 0, "no per-fault events streamed");

    client
        .wait(id, Duration::from_millis(25), Some(Duration::from_secs(60)))
        .expect("job finishes");
    assert!(client.artifact(id).is_ok());

    // Health and listing see the job; delete removes it.
    let health = client.healthz().expect("healthz");
    assert_eq!(
        health.get("status").and_then(gdf::core::json::Json::as_str),
        Some("ok")
    );
    let action = client.delete(id).expect("delete");
    assert_eq!(
        action.get("action").and_then(gdf::core::json::Json::as_str),
        Some("removed")
    );
    assert!(matches!(
        client.artifact(id),
        Err(ServeError::Api { status: 404, .. })
    ));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
