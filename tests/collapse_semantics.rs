//! Semantic validation of delay-fault equivalence collapsing: on small
//! circuits, every pair of faults placed in one class must have *exactly*
//! the same set of robustly detecting `(V1, V2, state)` triples under the
//! independent TDsim semantics.

use gdf::netlist::collapse::collapse_delay_faults;
use gdf::netlist::generator::{generate, CircuitProfile};
use gdf::netlist::{Circuit, FaultUniverse, NodeId};
use gdf::sim::{detected_delay_faults, two_frame_values};

fn detection_signature(
    c: &Circuit,
    fault_idx: usize,
    faults: &[gdf::netlist::DelayFault],
) -> Vec<bool> {
    let n_pi = c.num_inputs();
    let n_ff = c.num_dffs();
    let all_ppos: Vec<NodeId> = c.ppos().to_vec();
    let mut sig = Vec::new();
    for v1pat in 0u32..(1 << n_pi) {
        for v2pat in 0u32..(1 << n_pi) {
            for spat in 0u32..(1 << n_ff) {
                let v1: Vec<bool> = (0..n_pi).map(|i| v1pat & (1 << i) != 0).collect();
                let v2: Vec<bool> = (0..n_pi).map(|i| v2pat & (1 << i) != 0).collect();
                let st: Vec<bool> = (0..n_ff).map(|i| spat & (1 << i) != 0).collect();
                let w = two_frame_values(c, &v1, &v2, &st);
                let hit =
                    !detected_delay_faults(c, &w, &[faults[fault_idx]], &all_ppos, &[]).is_empty();
                sig.push(hit);
            }
        }
    }
    sig
}

fn check_circuit(c: &Circuit) {
    let faults = FaultUniverse::default().delay_faults(c);
    let col = collapse_delay_faults(c, &faults);
    for class in 0..col.representatives.len() {
        let members = col.members(class);
        if members.len() < 2 {
            continue;
        }
        let reference = detection_signature(c, members[0], &faults);
        for &m in &members[1..] {
            let sig = detection_signature(c, m, &faults);
            assert_eq!(
                reference,
                sig,
                "{}: {} and {} were collapsed but differ",
                c.name(),
                faults[members[0]].describe(c),
                faults[m].describe(c)
            );
        }
    }
}

#[test]
fn collapsed_classes_have_identical_detection_sets_s27() {
    check_circuit(&gdf::netlist::suite::s27());
}

#[test]
fn collapsed_classes_identical_on_random_circuits() {
    for seed in [5u64, 17, 51] {
        let p = CircuitProfile::new(format!("col{seed}"), 3, 2, 2, 16, seed);
        let c = generate(&p);
        check_circuit(&c);
    }
}
