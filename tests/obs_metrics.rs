//! The `/metrics` endpoint contract, proven over real sockets:
//!
//! 1. **Valid exposition** — every line of a live (and a draining)
//!    server parses as Prometheus text: `# HELP`/`# TYPE` headers for
//!    every family, every sample a finite number, no negative counters.
//! 2. **Scrape compatibility** — every series the pre-registry server
//!    exposed still exists under the same name and type, so existing
//!    dashboards and the fleet coordinator's probe keep working.

use gdf::core::{Backend, RunConfig};
use gdf::serve::server::submission_for_suite;
use gdf::serve::{Client, JobServer, ServeConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-obsm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(dir: &PathBuf, workers: usize) -> (JobServer, Client) {
    let server = JobServer::start(ServeConfig::new("127.0.0.1:0", dir).with_workers(workers))
        .expect("server starts");
    let client = Client::new(server.local_addr().to_string());
    (server, client)
}

/// Strict line-by-line exposition parse. Returns `family -> type` and
/// panics (with the offending line) on anything malformed: a sample
/// whose family has no headers, a `# TYPE` after samples started for
/// another family interleaved, a non-finite value, a negative counter
/// or summary sample.
fn parse_exposition(text: &str) -> BTreeMap<String, String> {
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: Vec<String> = Vec::new();
    for line in text.lines() {
        assert_eq!(line.trim(), line, "stray whitespace: {line:?}");
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has text");
            assert!(!help.is_empty(), "empty HELP for {name}");
            helped.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "unknown TYPE {kind} for {name}"
            );
            assert_eq!(
                helped.last().map(String::as_str),
                Some(name),
                "TYPE {name} not immediately after its HELP"
            );
            assert!(
                families
                    .insert(name.to_string(), kind.to_string())
                    .is_none(),
                "family {name} declared twice"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line:?}");
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|e| panic!("{line:?}: {e}"));
        assert!(value.is_finite(), "non-finite sample: {line:?}");
        let name = series.split('{').next().unwrap();
        let family = ["_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|base| families.get(*base).map(String::as_str) == Some("summary"))
            })
            .unwrap_or(name);
        let kind = families
            .get(family)
            .unwrap_or_else(|| panic!("sample {line:?} has no # TYPE header"));
        if kind == "counter" || kind == "summary" {
            assert!(value >= 0.0, "negative {kind} sample: {line:?}");
        }
        if family == "gdf_worker_utilization" {
            assert!((0.0..=1.0).contains(&value), "utilization range: {line:?}");
        }
    }
    families
}

/// Every family the seed server exposed, with its exposed type. The
/// registry migration must keep all of these verbatim — renames or
/// type changes here break real scrape configs.
const SEED_FAMILIES: [(&str, &str); 13] = [
    ("gdf_queue_depth", "gauge"),
    ("gdf_jobs_running", "gauge"),
    ("gdf_jobs_queued", "gauge"),
    ("gdf_workers", "gauge"),
    ("gdf_workers_busy", "gauge"),
    ("gdf_worker_utilization", "gauge"),
    ("gdf_draining", "gauge"),
    ("gdf_store_bytes", "gauge"),
    ("gdf_store_objects", "gauge"),
    ("gdf_jobs_completed_total", "counter"),
    ("gdf_jobs_failed_total", "counter"),
    ("gdf_cache_hits_total", "counter"),
    ("gdf_job_latency_seconds", "summary"),
];

#[test]
fn live_exposition_is_valid_and_keeps_every_seed_series() {
    let dir = temp_dir("live");
    let (server, client) = start_server(&dir, 2);
    let config = RunConfig::new(Backend::NonScan);
    let submission = submission_for_suite("suite:s27", &config);

    // One real run, then the identical submission again — the second is
    // answered from the exact result cache.
    for _ in 0..2 {
        let id = client.submit(&submission).expect("submit");
        client
            .wait(
                id,
                Duration::from_millis(25),
                Some(Duration::from_secs(120)),
            )
            .expect("job finishes");
    }

    let text = client.metrics().expect("scrape");
    let families = parse_exposition(&text);
    for (name, kind) in SEED_FAMILIES {
        assert_eq!(
            families.get(name).map(String::as_str),
            Some(kind),
            "seed series {name} lost or retyped"
        );
    }
    // The seed's summary samples are still present by exact series name.
    for series in [
        "gdf_job_latency_seconds{quantile=\"0.5\"}",
        "gdf_job_latency_seconds{quantile=\"0.99\"}",
        "gdf_job_latency_seconds_count",
    ] {
        assert!(text.lines().any(|l| l.starts_with(series)), "lost {series}");
    }
    // And the new families joined them.
    assert_eq!(
        families.get("gdf_engine_phase_seconds").map(String::as_str),
        Some("summary")
    );
    assert_eq!(
        families.get("gdf_http_requests_total").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        families.get("gdf_traces_written_total").map(String::as_str),
        Some("counter")
    );

    let sample =
        |name: &str| Client::sample_metric(&text, name).unwrap_or_else(|| panic!("{name}"));
    assert_eq!(sample("gdf_jobs_completed_total"), 2.0);
    assert_eq!(sample("gdf_cache_hits_total"), 1.0);
    assert_eq!(sample("gdf_jobs_failed_total"), 0.0);
    // Only the real run observes latency; the cache hit is instant.
    assert_eq!(sample("gdf_job_latency_seconds_count"), 1.0);
    // Likewise only the real run flows through the job observer and
    // writes a trace document.
    assert_eq!(sample("gdf_traces_written_total"), 1.0);
    // The engine phases actually recorded spans during the real run.
    for phase in ["parse", "generate", "fill", "fsim", "publish"] {
        let series = format!("gdf_engine_phase_seconds_count{{phase=\"{phase}\"}}");
        let count = text
            .lines()
            .find_map(|l| l.strip_prefix(series.as_str()))
            .and_then(|rest| rest.trim().parse::<f64>().ok())
            .unwrap_or_else(|| panic!("no {series} sample"));
        assert!(count > 0.0, "phase {phase} never recorded");
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_server_still_exposes_a_valid_exposition() {
    let dir = temp_dir("drain");
    let (server, client) = start_server(&dir, 2);
    let text = client.metrics().expect("scrape before drain");
    assert_eq!(Client::sample_metric(&text, "gdf_draining"), Some(0.0));

    server.drain();
    let text = client.metrics().expect("scrape while draining");
    let families = parse_exposition(&text);
    for (name, kind) in SEED_FAMILIES {
        assert_eq!(
            families.get(name).map(String::as_str),
            Some(kind),
            "draining lost {name}"
        );
    }
    assert_eq!(Client::sample_metric(&text, "gdf_draining"), Some(1.0));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
