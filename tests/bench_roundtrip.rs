//! Round-trip property: `to_bench` → `parse_bench` reproduces an
//! equivalent circuit — same stats, same per-node structure and topo
//! levels, same fault universe — for the whole benchmark suite and for
//! random generator circuits.

use gdf::netlist::generator::{generate, CircuitProfile};
use gdf::netlist::{parse_bench, suite, to_bench, Circuit, FaultUniverse};

/// Asserts `b` is structurally equivalent to `a`: identical interface
/// order, per-node kind/fanin/output-marking/level (matched by name),
/// and an identical enumerated fault universe.
fn assert_equivalent(a: &Circuit, b: &Circuit) {
    let name = a.name();
    assert_eq!(
        a.stats().to_string(),
        b.stats().to_string(),
        "{name}: stats"
    );

    // Interface order matters (test vectors index PIs positionally).
    let names = |ids: &[gdf::netlist::NodeId], c: &Circuit| -> Vec<String> {
        ids.iter().map(|&i| c.node(i).name().to_string()).collect()
    };
    assert_eq!(
        names(a.inputs(), a),
        names(b.inputs(), b),
        "{name}: PI order"
    );
    assert_eq!(
        names(a.outputs(), a),
        names(b.outputs(), b),
        "{name}: PO order"
    );
    assert_eq!(names(a.dffs(), a), names(b.dffs(), b), "{name}: DFF order");

    // Per-node: kind, fanin (names, pin order), output marking, level.
    assert_eq!(a.num_nodes(), b.num_nodes(), "{name}: node count");
    assert_eq!(a.max_level(), b.max_level(), "{name}: depth");
    for node_a in a.nodes() {
        let id_b = b
            .node_by_name(node_a.name())
            .unwrap_or_else(|| panic!("{name}: `{}` lost in round trip", node_a.name()));
        let node_b = b.node(id_b);
        assert_eq!(
            node_a.kind(),
            node_b.kind(),
            "{name}: kind of `{}`",
            node_a.name()
        );
        assert_eq!(
            node_a.is_output(),
            node_b.is_output(),
            "{name}: output mark of `{}`",
            node_a.name()
        );
        let fanin_a: Vec<&str> = node_a.fanin().iter().map(|&f| a.node(f).name()).collect();
        let fanin_b: Vec<&str> = node_b.fanin().iter().map(|&f| b.node(f).name()).collect();
        assert_eq!(fanin_a, fanin_b, "{name}: fanin of `{}`", node_a.name());
        let id_a = a.node_by_name(node_a.name()).expect("own node");
        assert_eq!(
            a.level(id_a),
            b.level(id_b),
            "{name}: topo level of `{}`",
            node_a.name()
        );
    }

    // The enumerated fault universe is identical (modulo node ids):
    // compare by human-readable description, order-insensitively.
    let universe = FaultUniverse::default();
    let mut faults_a: Vec<String> = universe
        .delay_faults(a)
        .into_iter()
        .map(|f| f.describe(a))
        .collect();
    let mut faults_b: Vec<String> = universe
        .delay_faults(b)
        .into_iter()
        .map(|f| f.describe(b))
        .collect();
    faults_a.sort();
    faults_b.sort();
    assert_eq!(faults_a, faults_b, "{name}: fault universe");
}

fn round_trip(c: &Circuit) {
    let text = to_bench(c);
    let back = parse_bench(c.name(), &text)
        .unwrap_or_else(|e| panic!("{}: to_bench output failed to re-parse: {e}", c.name()));
    assert_equivalent(c, &back);
    // A second round trip is a fixed point of the text form.
    assert_eq!(text, to_bench(&back), "{}: writer is idempotent", c.name());
}

#[test]
fn whole_suite_round_trips() {
    for c in suite::full_suite() {
        round_trip(&c);
    }
}

#[test]
fn random_generator_circuits_round_trip() {
    for (i, (pi, po, dff, gates)) in [(6, 3, 4, 60), (10, 5, 8, 150), (16, 8, 12, 300)]
        .into_iter()
        .enumerate()
    {
        let profile = CircuitProfile::new(
            format!("rt_gen{i}"),
            pi,
            po,
            dff,
            gates,
            0xBEEF ^ (i as u64) << 8,
        );
        round_trip(&generate(&profile));
    }
}

#[test]
fn generator_shapes_round_trip() {
    round_trip(&gdf::netlist::generator::shift_register(6));
    round_trip(&gdf::netlist::generator::counter(5));
}
