//! Multi-tenant admission control, end to end over real sockets:
//!
//! * auth gates the mutating routes (`401`/`403`) while reads stay open,
//! * per-tenant quotas and rate limits answer `429 + Retry-After`
//!   (distinct from the saturation `503`), and a drained lane admits
//!   again,
//! * the weighted fair scheduler serves a saturated server 2:1 by
//!   weight regardless of arrival order,
//! * and tenancy never touches result bytes: contended multi-tenant
//!   artifacts are byte-identical to a serial open-mode run.

use gdf::core::json::Json;
use gdf::core::{Backend, Limits, RunConfig};
use gdf::netlist::FaultUniverse;
use gdf::serve::server::submission_for_suite;
use gdf::serve::{Client, JobId, JobServer, ServeConfig, ServeError};
use gdf::tenant::{TenantRegistry, TenantSpec};
use std::path::PathBuf;
use std::time::Duration;

const ACME_TOKEN: &str = "test-token-acme";
const ZETA_TOKEN: &str = "test-token-zeta";
const OPS_TOKEN: &str = "test-token-ops";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-tenantq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_tenanted(dir: &PathBuf, workers: usize, registry: TenantRegistry) -> JobServer {
    JobServer::start(
        ServeConfig::new("127.0.0.1:0", dir)
            .with_workers(workers)
            .with_queue_capacity(64)
            .with_tenants(registry),
    )
    .expect("tenanted server starts")
}

fn client(server: &JobServer, token: &str) -> Client {
    Client::new(server.local_addr().to_string())
        .with_token(token)
        .with_timeout(Duration::from_secs(30))
}

/// A distinct-seed stuck-at `s27` submission — quick real work, never a
/// cache hit of another seed's job.
fn quick_job(seed: u64) -> Json {
    let mut config = RunConfig::new(Backend::StuckAt);
    config.seed = seed;
    submission_for_suite("suite:s27", &config)
}

/// A deliberately long job to pin a worker: non-scan `s208`, trimmed in
/// the slow dev profile the same way `serve_determinism.rs` trims it.
fn blocker_job() -> Json {
    let mut config = RunConfig::new(Backend::NonScan);
    if cfg!(debug_assertions) {
        config.universe = FaultUniverse::stems_only();
        config.limits = Limits::new()
            .with_local_backtrack_limit(20)
            .with_sequential_backtrack_limit(10)
            .with_max_propagation_frames(8)
            .with_max_sync_frames(8)
            .with_max_observation_retries(1);
    }
    submission_for_suite("suite:s208", &config)
}

fn wait_until_running(client: &Client, id: JobId) {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(id).expect("status");
        let state = status.get("state").and_then(Json::as_str).unwrap_or("");
        assert_ne!(state, "failed", "blocker failed: {status}");
        if state == "running" {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "blocker never started: {status}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn auth_gates_mutating_routes_while_reads_stay_open() {
    let dir = temp_dir("auth");
    let registry = TenantRegistry::new(vec![
        TenantSpec::new("acme", ACME_TOKEN),
        TenantSpec::new("zeta", ZETA_TOKEN),
    ])
    .unwrap();
    let server = start_tenanted(&dir, 1, registry);

    // No token: 401. A wrong token: 403. Neither is retried.
    let anonymous = Client::new(server.local_addr().to_string()).with_retries(0);
    match anonymous.submit(&quick_job(1)) {
        Err(ServeError::Api { status: 401, .. }) => {}
        other => panic!("expected 401 for a tokenless submit, got {other:?}"),
    }
    let impostor = client(&server, "not-a-real-token").with_retries(0);
    match impostor.submit(&quick_job(1)) {
        Err(ServeError::Api {
            status: 403,
            message,
            ..
        }) => assert!(message.contains("unknown token"), "{message}"),
        other => panic!("expected 403 for an unknown token, got {other:?}"),
    }

    // Reads stay open: health, metrics, and job GETs need no token.
    anonymous.healthz().expect("/healthz answers without auth");
    let metrics = anonymous.metrics().expect("/metrics answers without auth");
    assert!(metrics.contains("gdf_http_requests_total"));

    // A real tenant submits; the job carries its owner tag.
    let acme = client(&server, ACME_TOKEN);
    let id = acme.submit(&quick_job(2)).expect("authorized submit");
    let status = acme.wait(id, Duration::from_millis(5), None).expect("done");
    assert_eq!(
        status.get("tenant").and_then(Json::as_str),
        Some("acme"),
        "{status}"
    );
    // Anonymous status reads are open too.
    anonymous.status(id).expect("job GET stays open");

    // Cross-tenant delete: zeta may not touch acme's job.
    let zeta = client(&server, ZETA_TOKEN).with_retries(0);
    match zeta.delete(id) {
        Err(ServeError::Api {
            status: 403,
            message,
            ..
        }) => assert!(message.contains("another tenant"), "{message}"),
        other => panic!("expected 403 for a cross-tenant delete, got {other:?}"),
    }
    // Tokenless delete: 401. The owner's delete goes through.
    match anonymous.delete(id) {
        Err(ServeError::Api { status: 401, .. }) => {}
        other => panic!("expected 401 for a tokenless delete, got {other:?}"),
    }
    acme.delete(id).expect("the owner may delete its job");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queued_quota_answers_429_with_retry_after_then_drains() {
    let dir = temp_dir("quota");
    // A suspended lane (max_running 0) keeps admitted jobs queued, so
    // the quota mechanics are observable without any timing games.
    let registry = TenantRegistry::new(vec![TenantSpec::new("cap", ACME_TOKEN)
        .with_max_queued(1)
        .with_max_running(0)])
    .unwrap();
    let server = start_tenanted(&dir, 1, registry);
    let cap = client(&server, ACME_TOKEN).with_retries(0);

    // One job fills the quota; the next is the tenant's problem (429
    // with a wait hint), not the server's (503).
    let first = cap.submit(&quick_job(10)).expect("first job admitted");
    match cap.submit(&quick_job(11)) {
        Err(ServeError::Api {
            status: 429,
            message,
            retry_after,
        }) => {
            assert!(message.contains("queued-job quota"), "{message}");
            assert!(retry_after.is_some(), "429 must carry Retry-After");
        }
        other => panic!("expected the quota 429, got {other:?}"),
    }
    let metrics = cap.metrics().expect("metrics");
    assert!(
        metrics.contains("gdf_tenant_rejected_total{tenant=\"cap\"} 1"),
        "rejection must be counted:\n{metrics}"
    );

    // Draining the lane (cancelling the queued job) re-admits.
    cap.delete(first).expect("cancel the queued job");
    cap.submit(&quick_job(11))
        .expect("a drained lane admits again");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rate_limit_answers_429_and_the_client_retries_through() {
    let dir = temp_dir("rate");
    // 1 request/second with a burst of 1: the second immediate submit
    // must be rejected, and a token regrows within a second.
    let registry =
        TenantRegistry::new(vec![TenantSpec::new("slow", ACME_TOKEN).with_rate(1.0, 1.0)]).unwrap();
    let server = start_tenanted(&dir, 1, registry);

    let probe = client(&server, ACME_TOKEN).with_retries(0);
    probe.submit(&quick_job(20)).expect("burst token admits");
    match probe.submit(&quick_job(21)) {
        Err(ServeError::Api {
            status: 429,
            message,
            retry_after,
        }) => {
            assert!(message.contains("request rate"), "{message}");
            assert!(
                retry_after.unwrap_or(0) >= 1,
                "the hint names the refill wait: {retry_after:?}"
            );
        }
        other => panic!("expected the rate 429, got {other:?}"),
    }

    // A retrying client honours the hint and lands once the bucket
    // refills — nothing was enqueued, so the retry is safe.
    let patient = client(&server, ACME_TOKEN).with_retries(3);
    patient
        .submit(&quick_job(22))
        .expect("the retry rides out the rate limit");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn weighted_fairness_on_a_saturated_server() {
    let dir = temp_dir("fair");
    let registry = TenantRegistry::new(vec![
        TenantSpec::new("acme", ACME_TOKEN).with_weight(2),
        TenantSpec::new("zeta", ZETA_TOKEN).with_weight(1),
        TenantSpec::new("ops", OPS_TOKEN),
    ])
    .unwrap();
    let server = start_tenanted(&dir, 1, registry);
    let acme = client(&server, ACME_TOKEN);
    let zeta = client(&server, ZETA_TOKEN);
    let ops = client(&server, OPS_TOKEN);

    // Pin the single worker so every test job queues before any
    // dispatch — arrival order and dispatch order fully decouple.
    let blocker = ops.submit(&blocker_job()).expect("blocker submits");
    wait_until_running(&ops, blocker);

    // All of zeta's jobs arrive BEFORE any of acme's. FIFO would drain
    // zeta first; WDRR must serve 2:1 by weight from the start.
    let mut ids: Vec<(usize, JobId)> = Vec::new();
    for seed in 0..6 {
        ids.push((1, zeta.submit(&quick_job(100 + seed)).expect("zeta submit")));
    }
    for seed in 0..12 {
        ids.push((0, acme.submit(&quick_job(200 + seed)).expect("acme submit")));
    }
    // Release the worker: cancel the blocker at its next fault boundary.
    ops.delete(blocker).expect("cancel blocker");

    // Watch completions; in every mid-drain snapshot the weight-2
    // tenant must be at least even with the weight-1 tenant despite
    // arriving later (FIFO would hold acme at 0 until zeta drained).
    let deadline = std::time::Instant::now() + Duration::from_secs(300);
    let mut discriminating_snapshots = 0usize;
    loop {
        let mut done = [0usize; 2];
        for &(tenant, id) in &ids {
            let status = acme.status(id).expect("status");
            let state = status.get("state").and_then(Json::as_str).unwrap_or("");
            assert_ne!(state, "failed", "job failed: {status}");
            if state == "done" {
                done[tenant] += 1;
            }
        }
        let total = done[0] + done[1];
        if (3..=12).contains(&total) {
            discriminating_snapshots += 1;
            assert!(
                done[0] >= done[1],
                "weight-2 acme ({}) behind weight-1 zeta ({}) at {total} done",
                done[0],
                done[1]
            );
        }
        if total == ids.len() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "fairness run timed out at {total} done"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        discriminating_snapshots > 0,
        "the drain was never observed mid-flight; nothing was tested"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn contended_tenant_artifacts_match_serial_open_mode() {
    let spec_seed = 0x1995;
    let mut config = RunConfig::new(Backend::StuckAt);
    config.seed = spec_seed;
    let submission = submission_for_suite("suite:s27", &config);

    // Reference: the same spec through a serial, open-mode (no
    // registry) server — the pre-tenancy code path, byte for byte.
    let open_dir = temp_dir("det-open");
    let open_server = JobServer::start(
        ServeConfig::new("127.0.0.1:0", &open_dir)
            .with_workers(1)
            .with_queue_capacity(4),
    )
    .expect("open server starts");
    let open_client = Client::new(open_server.local_addr().to_string());
    let id = open_client.submit(&submission).expect("open submit");
    open_client
        .wait(id, Duration::from_millis(5), Some(Duration::from_secs(300)))
        .expect("open job done");
    let reference = open_client.artifact(id).expect("open artifact");
    open_server.shutdown();
    let _ = std::fs::remove_dir_all(&open_dir);

    // Contended: both tenants submit the same spec concurrently, amid
    // a pile of distinct-seed jobs, on a multi-worker tenanted server.
    let dir = temp_dir("det-tenant");
    let registry = TenantRegistry::new(vec![
        TenantSpec::new("acme", ACME_TOKEN).with_weight(2),
        TenantSpec::new("zeta", ZETA_TOKEN),
    ])
    .unwrap();
    let server = start_tenanted(&dir, 3, registry);
    let acme = client(&server, ACME_TOKEN);
    let zeta = client(&server, ZETA_TOKEN);
    let mut noise = Vec::new();
    for seed in 0..4 {
        noise.push(acme.submit(&quick_job(300 + seed)).expect("noise"));
        noise.push(zeta.submit(&quick_job(400 + seed)).expect("noise"));
    }
    let acme_id = acme.submit(&submission).expect("acme submit");
    let zeta_id = zeta.submit(&submission).expect("zeta submit");
    for id in noise.into_iter().chain([acme_id, zeta_id]) {
        acme.wait(id, Duration::from_millis(5), Some(Duration::from_secs(300)))
            .expect("job done");
    }
    let acme_artifact = acme.artifact(acme_id).expect("acme artifact");
    let zeta_artifact = zeta.artifact(zeta_id).expect("zeta artifact");
    assert_eq!(
        acme_artifact, reference,
        "tenancy must not change artifact bytes"
    );
    assert_eq!(
        zeta_artifact, reference,
        "cross-tenant runs of one spec agree byte for byte"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
