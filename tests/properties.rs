//! Property-based tests (proptest) over randomly generated circuits and
//! vectors: cross-component invariants that must hold for *any* input.

use gdf::algebra::delay::{eval_gate, eval_gate_sets, narrow_inputs, DelaySet, DelayValue};
use gdf::algebra::Logic3;
use gdf::netlist::generator::{generate, CircuitProfile};
use gdf::netlist::{parse_bench, to_bench, GateKind};
use gdf::sim::{two_frame_values, GoodSimulator};
use proptest::prelude::*;

fn arb_delay_value() -> impl Strategy<Value = DelayValue> {
    (0u8..8).prop_map(DelayValue::from_index)
}

fn arb_delay_set() -> impl Strategy<Value = DelaySet> {
    (1u8..=255).prop_map(DelaySet::from_bits)
}

fn arb_gate_kind() -> impl Strategy<Value = GateKind> {
    prop::sample::select(vec![
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ])
}

proptest! {
    /// The two-input algebra is commutative for every gate kind.
    #[test]
    fn algebra_commutative(kind in arb_gate_kind(), a in arb_delay_value(), b in arb_delay_value()) {
        prop_assert_eq!(eval_gate(kind, &[a, b]), eval_gate(kind, &[b, a]));
    }

    /// Frame endpoints always follow plain Boolean evaluation.
    #[test]
    fn algebra_endpoints_boolean(
        kind in arb_gate_kind(),
        vals in prop::collection::vec(arb_delay_value(), 1..5),
    ) {
        let out = eval_gate(kind, &vals);
        let inits: Vec<bool> = vals.iter().map(|v| v.initial()).collect();
        let fins: Vec<bool> = vals.iter().map(|v| v.final_value()).collect();
        prop_assert_eq!(out.initial(), kind.eval_bool(&inits));
        prop_assert_eq!(out.final_value(), kind.eval_bool(&fins));
    }

    /// Set-level evaluation is exactly the image of the Cartesian product.
    #[test]
    fn set_eval_exact(
        kind in arb_gate_kind(),
        a in arb_delay_set(),
        b in arb_delay_set(),
        c in arb_delay_set(),
    ) {
        let got = eval_gate_sets(kind, &[a, b, c]);
        let mut expect = DelaySet::EMPTY;
        for va in a.iter() {
            for vb in b.iter() {
                for vc in c.iter() {
                    expect.insert(eval_gate(kind, &[va, vb, vc]));
                }
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Backward narrowing never removes a feasible input combination.
    #[test]
    fn narrowing_sound(
        kind in arb_gate_kind(),
        a in arb_delay_set(),
        b in arb_delay_set(),
        out in arb_delay_set(),
    ) {
        let mut narrowed_out = out;
        let mut ins = [a, b];
        narrow_inputs(kind, &mut narrowed_out, &mut ins);
        for va in a.iter() {
            for vb in b.iter() {
                let r = eval_gate(kind, &[va, vb]);
                if out.contains(r) {
                    prop_assert!(ins[0].contains(va));
                    prop_assert!(ins[1].contains(vb));
                    prop_assert!(narrowed_out.contains(r));
                }
            }
        }
    }

    /// `.bench` writer/parser round-trip on arbitrary generated circuits.
    #[test]
    fn bench_round_trip(seed in 0u64..500, pi in 2usize..6, dff in 0usize..4, gates in 3usize..40) {
        let profile = CircuitProfile::new("prop", pi, 2, dff, gates, seed);
        let c1 = generate(&profile);
        let text = to_bench(&c1);
        let c2 = parse_bench(c1.name(), &text).expect("round trip parses");
        prop_assert_eq!(to_bench(&c2), text, "fixed point after one round trip");
        prop_assert_eq!(c1.num_gates(), c2.num_gates());
        prop_assert_eq!(c1.num_dffs(), c2.num_dffs());
    }

    /// The two-frame waveform's endpoints agree with two independent
    /// binary good-machine simulations on random circuits and vectors.
    #[test]
    fn waveform_endpoints_match_simulation(
        seed in 0u64..200,
        bits in prop::collection::vec(any::<bool>(), 24),
    ) {
        let profile = CircuitProfile::new("wave", 4, 2, 3, 20, seed);
        let c = generate(&profile);
        let v1: Vec<bool> = bits[0..4].to_vec();
        let v2: Vec<bool> = bits[4..8].to_vec();
        let st: Vec<bool> = bits[8..11].to_vec();
        let w = two_frame_values(&c, &v1, &v2, &st);

        let sim = GoodSimulator::new(&c);
        let to3 = |v: &[bool]| -> Vec<Logic3> { v.iter().map(|&b| Logic3::from_bool(b)).collect() };
        let f1 = sim.eval_comb(&to3(&v1), &to3(&st));
        let st2: Vec<Logic3> = sim.next_state(&f1);
        let f2 = sim.eval_comb(&to3(&v2), &st2);
        for idx in 0..c.num_nodes() {
            prop_assert_eq!(Some(w[idx].initial()), f1[idx].to_bool());
            prop_assert_eq!(Some(w[idx].final_value()), f2[idx].to_bool());
            prop_assert!(!w[idx].carries_fault(), "clean waveform never carries");
        }
    }

    /// SCOAP measures are finite and monotone toward the inputs on random
    /// circuits.
    #[test]
    fn scoap_finite(seed in 0u64..200) {
        let profile = CircuitProfile::new("scoap", 4, 2, 2, 25, seed);
        let c = generate(&profile);
        let t = gdf::netlist::scoap::Testability::compute(&c);
        for &pi in c.inputs() {
            prop_assert_eq!(t.cc0[pi.index()], gdf::netlist::scoap::PI_COST);
            prop_assert_eq!(t.cc1[pi.index()], gdf::netlist::scoap::PI_COST);
        }
        for node in 0..c.num_nodes() {
            prop_assert!(t.cc0[node] >= 1);
            prop_assert!(t.cc1[node] >= 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TDgen soundness on random circuits: every generated test, X-filled
    /// arbitrarily, robustly detects its target fault under the
    /// independent TDsim semantics.
    #[test]
    fn tdgen_sound_on_random_circuits(seed in 0u64..60, fill in any::<u64>()) {
        use gdf::netlist::FaultUniverse;
        use gdf::sim::detected_delay_faults;
        use gdf::tdgen::{LocalObservation, TdGen, TdGenOutcome};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let profile = CircuitProfile::new("sound", 4, 2, 2, 22, seed);
        let c = generate(&profile);
        let gen = TdGen::new(&c);
        let faults = FaultUniverse::default().delay_faults(&c);
        let mut rng = StdRng::seed_from_u64(fill);
        for &fault in faults.iter().take(20) {
            if let TdGenOutcome::Test(t) = gen.generate(fault) {
                let mut fill_vec = |v: &[Logic3]| -> Vec<bool> {
                    v.iter().map(|l| l.to_bool().unwrap_or_else(|| rng.gen())).collect()
                };
                let v1 = fill_vec(&t.v1);
                let v2 = fill_vec(&t.v2);
                let st = fill_vec(&t.required_state);
                let w = two_frame_values(&c, &v1, &v2, &st);
                let obs: Vec<gdf::netlist::NodeId> = match t.observation {
                    LocalObservation::AtPo(_) => vec![],
                    LocalObservation::AtPpo { dff, .. } => vec![c.ppo_of_dff(c.dffs()[dff])],
                };
                let hits = detected_delay_faults(&c, &w, &[fault], &obs, &[]);
                prop_assert_eq!(hits.len(), 1, "unsound test for {}", fault.describe(&c));
            }
        }
    }

    /// Synchronizing sequences really force their targets from all-X, on
    /// random circuits, checked by 3-valued simulation with both fills.
    #[test]
    fn synchronizer_sound_on_random_circuits(seed in 0u64..60) {
        use gdf::semilet::justify::{synchronize, SyncLimits};

        let profile = CircuitProfile::new("sync", 4, 2, 3, 26, seed);
        let c = generate(&profile);
        let sim = GoodSimulator::new(&c);
        for dff in 0..c.num_dffs() {
            for target in [false, true] {
                let targets = [(dff, target)];
                if let Some(seq) =
                    synchronize(&c, &targets, SyncLimits::default()).sequence()
                {
                    for fill in [Logic3::Zero, Logic3::One] {
                        let vectors: Vec<Vec<Logic3>> = seq
                            .iter()
                            .map(|v| {
                                v.iter()
                                    .map(|&l| if l == Logic3::X { fill } else { l })
                                    .collect()
                            })
                            .collect();
                        let (_f, st) = sim.run(&sim.initial_state(), &vectors);
                        prop_assert_eq!(
                            st[dff],
                            Logic3::from_bool(target),
                            "sync lied for dff {} := {} (seed {})", dff, target, seed
                        );
                    }
                }
            }
        }
    }
}
