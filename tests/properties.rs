//! Property-based tests over randomly generated circuits and vectors:
//! cross-component invariants that must hold for *any* input.
//!
//! The build environment has no crates.io access, so instead of proptest
//! these properties run over a deterministic sample driven by the
//! workspace's vendored `rand` shim. Coverage is the same spirit:
//! hundreds of random cases per property, with the failing case's inputs
//! in the panic message.

use gdf::algebra::delay::{eval_gate, eval_gate_sets, narrow_inputs, DelaySet, DelayValue};
use gdf::algebra::Logic3;
use gdf::netlist::generator::{generate, CircuitProfile};
use gdf::netlist::{parse_bench, to_bench, GateKind};
use gdf::sim::{two_frame_values, GoodSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GATE_KINDS: [GateKind; 6] = [
    GateKind::And,
    GateKind::Nand,
    GateKind::Or,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
];

fn rng_for(property: &str) -> StdRng {
    // A per-property seed keeps failures reproducible independently of
    // test execution order.
    let tag: u64 = property.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    StdRng::seed_from_u64(tag)
}

fn arb_gate_kind(rng: &mut StdRng) -> GateKind {
    GATE_KINDS[rng.gen_range(0..GATE_KINDS.len())]
}

fn arb_delay_value(rng: &mut StdRng) -> DelayValue {
    DelayValue::from_index(rng.gen_range(0u8..8))
}

fn arb_delay_set(rng: &mut StdRng) -> DelaySet {
    DelaySet::from_bits(rng.gen_range(1u16..256) as u8)
}

/// The two-input algebra is commutative for every gate kind.
#[test]
fn algebra_commutative() {
    let mut rng = rng_for("algebra_commutative");
    for _ in 0..2000 {
        let kind = arb_gate_kind(&mut rng);
        let a = arb_delay_value(&mut rng);
        let b = arb_delay_value(&mut rng);
        assert_eq!(
            eval_gate(kind, &[a, b]),
            eval_gate(kind, &[b, a]),
            "{kind:?}({a:?}, {b:?})"
        );
    }
}

/// Frame endpoints always follow plain Boolean evaluation.
#[test]
fn algebra_endpoints_boolean() {
    let mut rng = rng_for("algebra_endpoints_boolean");
    for _ in 0..2000 {
        let kind = arb_gate_kind(&mut rng);
        let n = rng.gen_range(1usize..5);
        let vals: Vec<DelayValue> = (0..n).map(|_| arb_delay_value(&mut rng)).collect();
        let out = eval_gate(kind, &vals);
        let inits: Vec<bool> = vals.iter().map(|v| v.initial()).collect();
        let fins: Vec<bool> = vals.iter().map(|v| v.final_value()).collect();
        assert_eq!(out.initial(), kind.eval_bool(&inits), "{kind:?} {vals:?}");
        assert_eq!(
            out.final_value(),
            kind.eval_bool(&fins),
            "{kind:?} {vals:?}"
        );
    }
}

/// Set-level evaluation is exactly the image of the Cartesian product.
#[test]
fn set_eval_exact() {
    let mut rng = rng_for("set_eval_exact");
    for _ in 0..400 {
        let kind = arb_gate_kind(&mut rng);
        let a = arb_delay_set(&mut rng);
        let b = arb_delay_set(&mut rng);
        let c = arb_delay_set(&mut rng);
        let got = eval_gate_sets(kind, &[a, b, c]);
        let mut expect = DelaySet::EMPTY;
        for va in a.iter() {
            for vb in b.iter() {
                for vc in c.iter() {
                    expect.insert(eval_gate(kind, &[va, vb, vc]));
                }
            }
        }
        assert_eq!(got, expect, "{kind:?}({a:?}, {b:?}, {c:?})");
    }
}

/// Backward narrowing never removes a feasible input combination.
#[test]
fn narrowing_sound() {
    let mut rng = rng_for("narrowing_sound");
    for _ in 0..800 {
        let kind = arb_gate_kind(&mut rng);
        let a = arb_delay_set(&mut rng);
        let b = arb_delay_set(&mut rng);
        let out = arb_delay_set(&mut rng);
        let mut narrowed_out = out;
        let mut ins = [a, b];
        narrow_inputs(kind, &mut narrowed_out, &mut ins);
        for va in a.iter() {
            for vb in b.iter() {
                let r = eval_gate(kind, &[va, vb]);
                if out.contains(r) {
                    assert!(ins[0].contains(va), "{kind:?} {a:?} {b:?} {out:?}");
                    assert!(ins[1].contains(vb), "{kind:?} {a:?} {b:?} {out:?}");
                    assert!(narrowed_out.contains(r), "{kind:?} {a:?} {b:?} {out:?}");
                }
            }
        }
    }
}

/// `.bench` writer/parser round-trip on arbitrary generated circuits.
#[test]
fn bench_round_trip() {
    let mut rng = rng_for("bench_round_trip");
    for case in 0..60 {
        let seed = rng.gen_range(0u64..500);
        let pi = rng.gen_range(2usize..6);
        let dff = rng.gen_range(0usize..4);
        let gates = rng.gen_range(3usize..40);
        let profile = CircuitProfile::new("prop", pi, 2, dff, gates, seed);
        let c1 = generate(&profile);
        let text = to_bench(&c1);
        let c2 = parse_bench(c1.name(), &text).expect("round trip parses");
        assert_eq!(
            to_bench(&c2),
            text,
            "fixed point after one round trip (case {case}, seed {seed})"
        );
        assert_eq!(c1.num_gates(), c2.num_gates(), "case {case}");
        assert_eq!(c1.num_dffs(), c2.num_dffs(), "case {case}");
    }
}

/// The two-frame waveform's endpoints agree with two independent binary
/// good-machine simulations on random circuits and vectors.
#[test]
fn waveform_endpoints_match_simulation() {
    let mut rng = rng_for("waveform_endpoints_match_simulation");
    for case in 0..60 {
        let seed = rng.gen_range(0u64..200);
        let profile = CircuitProfile::new("wave", 4, 2, 3, 20, seed);
        let c = generate(&profile);
        let v1: Vec<bool> = (0..4).map(|_| rng.gen()).collect();
        let v2: Vec<bool> = (0..4).map(|_| rng.gen()).collect();
        let st: Vec<bool> = (0..3).map(|_| rng.gen()).collect();
        let w = two_frame_values(&c, &v1, &v2, &st);

        let sim = GoodSimulator::new(&c);
        let to3 = |v: &[bool]| -> Vec<Logic3> { v.iter().map(|&b| Logic3::from_bool(b)).collect() };
        let f1 = sim.eval_comb(&to3(&v1), &to3(&st));
        let st2: Vec<Logic3> = sim.next_state(&f1);
        let f2 = sim.eval_comb(&to3(&v2), &st2);
        for idx in 0..c.num_nodes() {
            assert_eq!(
                Some(w[idx].initial()),
                f1[idx].to_bool(),
                "case {case} seed {seed}"
            );
            assert_eq!(
                Some(w[idx].final_value()),
                f2[idx].to_bool(),
                "case {case} seed {seed}"
            );
            assert!(
                !w[idx].carries_fault(),
                "clean waveform never carries (case {case}, seed {seed})"
            );
        }
    }
}

/// SCOAP measures are finite and monotone toward the inputs on random
/// circuits.
#[test]
fn scoap_finite() {
    let mut rng = rng_for("scoap_finite");
    for _ in 0..60 {
        let seed = rng.gen_range(0u64..200);
        let profile = CircuitProfile::new("scoap", 4, 2, 2, 25, seed);
        let c = generate(&profile);
        let t = gdf::netlist::scoap::Testability::compute(&c);
        for &pi in c.inputs() {
            assert_eq!(t.cc0[pi.index()], gdf::netlist::scoap::PI_COST);
            assert_eq!(t.cc1[pi.index()], gdf::netlist::scoap::PI_COST);
        }
        for node in 0..c.num_nodes() {
            assert!(t.cc0[node] >= 1, "seed {seed}");
            assert!(t.cc1[node] >= 1, "seed {seed}");
        }
    }
}

/// TDgen soundness on random circuits: every generated test, X-filled
/// arbitrarily, robustly detects its target fault under the independent
/// TDsim semantics.
#[test]
fn tdgen_sound_on_random_circuits() {
    use gdf::netlist::FaultUniverse;
    use gdf::sim::detected_delay_faults;
    use gdf::tdgen::{LocalObservation, TdGen, TdGenOutcome};

    let mut rng = rng_for("tdgen_sound_on_random_circuits");
    for case in 0..12 {
        let seed = rng.gen_range(0u64..60);
        let fill: u64 = rng.gen();
        let profile = CircuitProfile::new("sound", 4, 2, 2, 22, seed);
        let c = generate(&profile);
        let gen = TdGen::new(&c);
        let faults = FaultUniverse::default().delay_faults(&c);
        let mut fill_rng = StdRng::seed_from_u64(fill);
        for &fault in faults.iter().take(20) {
            if let TdGenOutcome::Test(t) = gen.generate(fault) {
                let mut fill_vec = |v: &[Logic3]| -> Vec<bool> {
                    v.iter()
                        .map(|l| l.to_bool().unwrap_or_else(|| fill_rng.gen()))
                        .collect()
                };
                let v1 = fill_vec(&t.v1);
                let v2 = fill_vec(&t.v2);
                let st = fill_vec(&t.required_state);
                let w = two_frame_values(&c, &v1, &v2, &st);
                let obs: Vec<gdf::netlist::NodeId> = match t.observation {
                    LocalObservation::AtPo(_) => vec![],
                    LocalObservation::AtPpo { dff, .. } => vec![c.ppo_of_dff(c.dffs()[dff])],
                };
                let hits = detected_delay_faults(&c, &w, &[fault], &obs, &[]);
                assert_eq!(
                    hits.len(),
                    1,
                    "unsound test for {} (case {case}, seed {seed}, fill {fill})",
                    fault.describe(&c)
                );
            }
        }
    }
}

/// Synchronizing sequences really force their targets from all-X, on
/// random circuits, checked by 3-valued simulation with both fills.
#[test]
fn synchronizer_sound_on_random_circuits() {
    use gdf::semilet::justify::{synchronize, SyncLimits};

    let mut rng = rng_for("synchronizer_sound_on_random_circuits");
    for case in 0..12 {
        let seed = rng.gen_range(0u64..60);
        let profile = CircuitProfile::new("sync", 4, 2, 3, 26, seed);
        let c = generate(&profile);
        let sim = GoodSimulator::new(&c);
        for dff in 0..c.num_dffs() {
            for target in [false, true] {
                let targets = [(dff, target)];
                if let Some(seq) = synchronize(&c, &targets, SyncLimits::default()).sequence() {
                    for fill in [Logic3::Zero, Logic3::One] {
                        let vectors: Vec<Vec<Logic3>> = seq
                            .iter()
                            .map(|v| {
                                v.iter()
                                    .map(|&l| if l == Logic3::X { fill } else { l })
                                    .collect()
                            })
                            .collect();
                        let (_f, st) = sim.run(&sim.initial_state(), &vectors);
                        assert_eq!(
                            st[dff],
                            Logic3::from_bool(target),
                            "sync lied for dff {dff} := {target} (case {case}, seed {seed})"
                        );
                    }
                }
            }
        }
    }
}
