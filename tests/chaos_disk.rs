//! Disk chaos over the real artifact stack: every injected persistence
//! fault must surface as a friendly typed error or be healed by the
//! next resume — never a panic, never silently-trusted corruption.
//!
//! These tests install a process-global [`ChaosDisk`] via
//! [`ChaosGuard`], which serializes them against each other; the chaos
//! root confines injection to each test's own directory.

use gdf::chaos::{ChaosDisk, ChaosGuard, ChaosSchedule};
use gdf::core::{Atpg, Backend, Campaign, CampaignReport, CircuitSource, RunArtifact, RunConfig};
use gdf::netlist::suite;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-chaosd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn reference_artifact(config: RunConfig) -> RunArtifact {
    let circuit = suite::s27();
    let run = Atpg::builder(&circuit)
        .backend(config.backend)
        .seed(config.seed)
        .build()
        .run();
    RunArtifact::from_run(
        &circuit,
        &run,
        config,
        Some(CircuitSource::suite(&circuit, "s27")),
    )
}

/// Same seed, same draws → the identical injection sequence. This is
/// the reproducibility half of the acceptance criteria, proven at the
/// schedule level where thread interleaving cannot blur it.
#[test]
fn same_seed_reproduces_the_identical_injection_sequence() {
    let runs: Vec<Vec<(u64, Option<usize>)>> = (0..2)
        .map(|_| {
            let schedule = ChaosSchedule::new(0xC4405, 0.35);
            (0..400).map(|i| (i, schedule.decide(4))).collect()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert!(
        runs[0].iter().filter(|(_, d)| d.is_some()).count() >= 100,
        "rate 0.35 over 400 draws injects well over 100 faults"
    );
}

/// Artifact save/load under persistent write chaos: every failure is a
/// typed `ArtifactError`, every reported success round-trips or is
/// detectably corrupt, and once chaos lifts the artifact persists and
/// reloads to identical bytes.
#[test]
fn artifact_saves_under_chaos_error_or_heal_never_panic() {
    let dir = temp_dir("artifact");
    let config = RunConfig::new(Backend::StuckAt);
    let reference = reference_artifact(config);
    let path = dir.join("s27.run.json");

    let schedule = Arc::new(ChaosSchedule::new(0xD15C, 0.6));
    {
        let _guard = ChaosGuard::install(ChaosDisk::new(Arc::clone(&schedule), &dir));
        for _ in 0..60 {
            match reference.save(&path) {
                // Friendly typed error: fine, try again.
                Err(e) => {
                    let message = e.to_string();
                    assert!(!message.is_empty());
                }
                // Reported success: the document on disk either loads
                // to the same canonical bytes or fails to load as a
                // typed error (torn write — the reader detects it).
                Ok(()) => match RunArtifact::load(&path) {
                    Ok(loaded) => {
                        assert_eq!(loaded.canonical_encode(), reference.canonical_encode())
                    }
                    Err(e) => {
                        assert!(!e.to_string().is_empty());
                    }
                },
            }
        }
        assert!(schedule.injected() > 0, "chaos actually fired");
    }
    // Chaos lifted: the same path heals on the next save.
    reference.save(&path).expect("clean save after chaos");
    let healed = RunArtifact::load(&path).expect("clean load after chaos");
    assert_eq!(healed.canonical_encode(), reference.canonical_encode());
    let _ = std::fs::remove_dir_all(&dir);
}

fn run_campaign(dir: &Path) -> CampaignReport {
    let circuit = suite::s27();
    let source = CircuitSource::suite(&circuit, "s27");
    Campaign::builder()
        .circuit_with_source(circuit, source)
        .backend(Backend::StuckAt)
        .artifact_dir(dir)
        .checkpoint_every(3)
        .resume(true)
        .run()
}

/// A campaign checkpointing under chaos, then resumed clean, produces
/// byte-identical artifacts to an undisturbed run — checkpoint losses
/// cost recomputation, never correctness.
#[test]
fn campaign_resumed_after_disk_chaos_matches_a_clean_run() {
    // The undisturbed reference.
    let clean_dir = temp_dir("campaign-clean");
    let clean = run_campaign(&clean_dir);
    assert!(clean.warnings.is_empty(), "{:?}", clean.warnings);
    let reference = RunArtifact::load(clean_dir.join("s27.run.json"))
        .unwrap()
        .canonical_encode();

    // The chaotic attempt: checkpoint and artifact writes tear and
    // fail mid-run. The campaign itself must complete — persistence
    // failures are warnings, never panics.
    let dir = temp_dir("campaign-chaos");
    let schedule = Arc::new(ChaosSchedule::new(0xCA47, 0.5));
    {
        let _guard = ChaosGuard::install(ChaosDisk::new(Arc::clone(&schedule), &dir));
        let chaotic = run_campaign(&dir);
        assert_eq!(chaotic.circuits.len(), 1, "the campaign ran to the end");
    }
    // Whatever chaos left on disk — torn, stale, missing — a clean
    // resume converges to the reference bytes. (A torn artifact fails
    // to decode, so the campaign reruns the circuit; a healthy one is
    // adopted as-is.)
    run_campaign(&dir);
    let recovered = RunArtifact::load(dir.join("s27.run.json"))
        .unwrap()
        .canonical_encode();
    assert_eq!(recovered, reference);

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Stale `*.tmp` stragglers (crash between write and rename) never
/// confuse a later save or load of the real path.
#[test]
fn stale_temp_files_are_harmless() {
    let dir = temp_dir("stale");
    let config = RunConfig::new(Backend::StuckAt);
    let reference = reference_artifact(config);
    let path = dir.join("s27.run.json");
    // Plant a convincing straggler where the atomic write stages.
    std::fs::write(
        gdf::core::io::tmp_path(&path),
        "{\"format\": \"gdf-run\", \"version\": 1, \"truncated",
    )
    .unwrap();
    reference.save(&path).expect("save over a straggler");
    let loaded = RunArtifact::load(&path).expect("load ignores stragglers");
    assert_eq!(loaded.canonical_encode(), reference.canonical_encode());
    let _ = std::fs::remove_dir_all(&dir);
}
