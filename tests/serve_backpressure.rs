//! Slow-reader backpressure on `/events`: a subscriber that never
//! reads must not pin its connection slot for the job's lifetime.
//!
//! The client here connects with a deliberately tiny receive buffer
//! (`SO_RCVBUF` = 1 KiB, set *before* connect so the handshake
//! advertises the small window), subscribes to the event stream of a
//! job that never runs, and then reads nothing. The server's padded
//! keepalives fill the window within a few rounds; the `TIOCOUTQ`
//! stall probe then cuts the stream. Before the fix this connection
//! held its slot (one of `MAX_CONNECTIONS = 256`) until the job ended
//! — forever, for a suspended job.
//!
//! Linux-only: the test (like the probe it exercises) speaks raw
//! socket APIs.
#![cfg(target_os = "linux")]

use gdf::core::{Backend, RunConfig};
use gdf::serve::server::submission_for_suite;
use gdf::serve::{Client, JobServer, ServeConfig};
use gdf::tenant::{TenantRegistry, TenantSpec};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-backp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A TCP connection whose `SO_RCVBUF` was shrunk to 1 KiB *before*
/// connecting, so the handshake advertises a tiny receive window and a
/// non-reading peer stalls the sender within a few kilobytes.
fn connect_with_tiny_rcvbuf(addr: SocketAddr) -> TcpStream {
    use std::os::fd::FromRawFd;
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
        fn connect(fd: i32, addr: *const std::ffi::c_void, len: u32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;

    let SocketAddr::V4(v4) = addr else {
        panic!("test server binds IPv4");
    };
    let fd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
    assert!(fd >= 0, "socket() failed");
    let size: i32 = 1024;
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_RCVBUF,
            (&size as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
    // `sin_addr` and `sin_port` are network byte order.
    let sin = SockaddrIn {
        family: AF_INET as u16,
        port: v4.port().to_be(),
        addr: u32::from_ne_bytes(v4.ip().octets()),
        zero: [0; 8],
    };
    let rc = unsafe {
        connect(
            fd,
            (&sin as *const SockaddrIn).cast(),
            std::mem::size_of::<SockaddrIn>() as u32,
        )
    };
    assert_eq!(rc, 0, "connect() failed");
    unsafe { TcpStream::from_raw_fd(fd) }
}

#[test]
fn never_reading_events_subscriber_is_dropped() {
    let dir = temp_dir("stall");
    // A suspended lane (max_running 0): the job is admitted but never
    // dispatched, so its event stream is keepalives only, indefinitely
    // — the stream's natural end can never race the stall verdict.
    let registry =
        TenantRegistry::new(vec![TenantSpec::new("cap", "tok-cap").with_max_running(0)]).unwrap();
    let server = JobServer::start(
        ServeConfig::new("127.0.0.1:0", &dir)
            .with_workers(1)
            .with_tenants(registry),
    )
    .expect("server starts");
    let submitter = Client::new(server.local_addr().to_string()).with_token("tok-cap");
    let id = submitter
        .submit(&submission_for_suite(
            "suite:s27",
            &RunConfig::new(Backend::StuckAt),
        ))
        .expect("submit");

    // Subscribe through the tiny-window socket and then go silent.
    let mut stalled = connect_with_tiny_rcvbuf(server.local_addr());
    write!(
        stalled,
        "GET /jobs/{id}/events HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");

    // Never read while the stall builds: the window fills within a few
    // padded keepalive rounds, then STREAM_STALL_ROUNDS probes (2 s
    // apart) declare the subscriber dead — ~15 s end to end.
    std::thread::sleep(Duration::from_secs(30));

    // Now drain: a dropped stream yields a bounded backlog and then
    // EOF/reset. A still-attached stream (the regression) would keep
    // producing keepalives every 2 s forever and time this loop out.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut drained = 0usize;
    let mut buf = [0u8; 4096];
    let closed = loop {
        match stalled.read(&mut buf) {
            Ok(0) => break true,
            Ok(n) => drained += n,
            Err(e) if matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe) => {
                break true
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => panic!("unexpected read error: {e}"),
        }
        if Instant::now() > deadline {
            break false;
        }
    };
    assert!(drained > 0, "the stream produced nothing at all");
    assert!(
        closed,
        "server never dropped the never-reading subscriber ({drained} bytes drained)"
    );

    // The slot is free and the server is healthy — a fresh client gets
    // straight through.
    submitter.healthz().expect("/healthz after the stall drop");
    let status = submitter.status(id).expect("job status");
    assert_eq!(
        status.get("state").and_then(gdf::core::json::Json::as_str),
        Some("queued"),
        "the suspended job itself is untouched: {status}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
