//! The payoff: a two-node fleet campaign under seeded disk chaos,
//! seeded network chaos on both node links, and a mid-campaign drain —
//! and the merged artifacts still come out byte-identical to a clean
//! in-process run. Faults cost retries and recomputation, never
//! correctness.
//!
//! The `#[cfg(unix)]` companion exercises the real operational story:
//! a `gdf serve` process takes `kill -TERM`, drains, exits 0, and a
//! restarted server resumes the interrupted job to completion.

use gdf::chaos::{ChaosDisk, ChaosGuard, ChaosProxy, ChaosSchedule};
use gdf::core::{Atpg, Backend, CircuitSource, RunArtifact, RunConfig};
use gdf::fleet::{Coordinator, FleetPlan};
use gdf::netlist::suite;
use gdf::serve::{JobServer, ServeConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-chaosf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sources(names: &[&str]) -> Vec<CircuitSource> {
    names
        .iter()
        .map(|name| CircuitSource::suite(&suite::by_name(name).expect("suite circuit"), name))
        .collect()
}

fn local_canonical(name: &str, config: RunConfig) -> String {
    let circuit = suite::by_name(name).expect("suite circuit");
    let run = Atpg::builder(&circuit)
        .backend(config.backend)
        .model(config.model)
        .universe(config.universe)
        .limits(config.limits)
        .seed(config.seed)
        .build()
        .run();
    RunArtifact::from_run(
        &circuit,
        &run,
        config,
        Some(CircuitSource::suite(&circuit, name)),
    )
    .canonical_encode()
}

fn merged_canonical(dir: &Path, name: &str) -> String {
    let path = dir.join(format!("{name}.run.json"));
    RunArtifact::load(&path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        .canonical_encode()
}

/// Disk faults on the coordinator's documents, network faults on both
/// node links, one node drained mid-campaign — merged bytes still equal
/// the clean run's, and the seeded schedules injected over a hundred
/// faults along the way.
#[test]
fn fleet_campaign_under_chaos_merges_byte_identical_artifacts() {
    let config = RunConfig::new(Backend::StuckAt);
    let names = ["s27", "s42", "s77"];

    let dir_a = temp_dir("node-a");
    let dir_b = temp_dir("node-b");
    let coord_dir = temp_dir("coord");

    let node_a = JobServer::start(ServeConfig::new("127.0.0.1:0", &dir_a).with_workers(2)).unwrap();
    let node_b = JobServer::start(ServeConfig::new("127.0.0.1:0", &dir_b).with_workers(2)).unwrap();

    // Wire chaos: every coordinator→node connection rolls the dice.
    let net_a = Arc::new(ChaosSchedule::new(0xBADA, 0.4));
    let net_b = Arc::new(ChaosSchedule::new(0xBADB, 0.4));
    let hold = Duration::from_millis(75);
    let mut proxy_a = ChaosProxy::start(node_a.local_addr(), Arc::clone(&net_a), hold).unwrap();
    let mut proxy_b = ChaosProxy::start(node_b.local_addr(), Arc::clone(&net_b), hold).unwrap();

    // Disk chaos: scoped to the coordinator's own documents (plan,
    // harvested shards, merged artifacts). Node-side persistence chaos
    // is covered by the serve/checkpoint tests; injecting it here would
    // let three unlucky artifact-save failures exhaust a unit's fleet
    // retry budget, which is the coordinator behaving as specified, not
    // a healing failure.
    let disk = Arc::new(ChaosSchedule::new(0xD15CF1EE7, 0.2));
    let guard = ChaosGuard::install(ChaosDisk::new(Arc::clone(&disk), &coord_dir));

    let plan = FleetPlan::new(
        "chaos-payoff",
        vec![
            proxy_a.local_addr().to_string(),
            proxy_b.local_addr().to_string(),
        ],
        config,
        sources(&names),
        8,
    )
    .unwrap();
    let mut coordinator = Coordinator::create(&coord_dir, plan)
        .unwrap()
        .with_poll(Duration::from_millis(25));

    let started = Instant::now();
    let mut drained = false;
    let mut finished = false;
    let mut rounds = 0u32;
    while started.elapsed() < Duration::from_secs(360) {
        rounds += 1;
        if coordinator.step().expect("a chaotic step never errors out") {
            finished = true;
            break;
        }
        // Mid-campaign graceful degradation: drain node B. It keeps
        // answering (`gdf_draining` flips, submissions get 503 +
        // Retry-After), its in-flight work checkpoints at the next
        // fault boundary, and the coordinator steals the leftovers.
        if rounds == 8 && !drained {
            node_b.drain();
            drained = true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(finished, "fleet did not converge under chaos in 360s");
    assert!(drained, "the campaign finished before the drain fired");
    // Chaos lifts before verification: the reads below must see what
    // the coordinator actually persisted, not injected read faults.
    drop(guard);

    let injected = disk.injected() + net_a.injected() + net_b.injected();
    assert!(
        injected >= 100,
        "expected at least 100 injected faults, saw {injected} \
         (disk {}, net-a {}, net-b {})",
        disk.injected(),
        net_a.injected(),
        net_b.injected()
    );
    assert!(net_a.injected() > 0, "node A's link never misbehaved");
    assert!(net_b.injected() > 0, "node B's link never misbehaved");

    // The merged artifacts are byte-identical to a clean local run —
    // chaos cost time, not correctness.
    for name in names {
        assert_eq!(
            merged_canonical(&coord_dir, name),
            local_canonical(name, config),
            "{name}: merged bytes diverged under chaos"
        );
    }

    proxy_a.stop();
    proxy_b.stop();
    node_a.shutdown();
    node_b.shutdown();
    for dir in [dir_a, dir_b, coord_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `kill -TERM` against the real binary: the server drains, exits 0,
/// and a restarted server resumes the interrupted job to completion.
#[cfg(unix)]
#[test]
fn sigterm_drains_exits_zero_and_the_next_server_resumes() {
    use gdf::serve::server::submission_for_suite;
    use gdf::serve::Client;
    use std::io::{BufRead, BufReader, Read};
    use std::process::{Command, Stdio};

    let dir = temp_dir("sigterm");
    let mut child = Command::new(env!("CARGO_BIN_EXE_gdf"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--workers", "1", "--dir"])
        .arg(&dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("gdf serve spawns");

    // The banner carries the ephemeral port.
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    reader.read_line(&mut banner).unwrap();
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();

    // Put real work on the queue, then TERM the process. NonScan s27 is
    // slow enough that the job is usually mid-run, but the contract
    // holds either way: exit 0, resumable state on disk.
    let config = RunConfig::new(Backend::NonScan);
    let client = Client::new(addr)
        .with_retries(3)
        .with_timeout(Duration::from_secs(5));
    let id = client
        .submit(&submission_for_suite("suite:s27", &config))
        .expect("submit before the TERM");
    std::thread::sleep(Duration::from_millis(50));

    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed");

    // Drain the rest of stdout (EOF when the process exits), then reap.
    let mut tail = String::new();
    reader.read_to_string(&mut tail).unwrap();
    let exit = child.wait().expect("gdf serve reaped");
    assert!(
        exit.success(),
        "drained server must exit 0, got {exit:?}; output: {banner}{tail}"
    );
    assert!(
        tail.contains("drained, exiting"),
        "missing drain log, got: {tail:?}"
    );

    // A fresh server over the same directory resumes the job.
    let server = JobServer::start(ServeConfig::new("127.0.0.1:0", &dir).with_workers(1)).unwrap();
    let resumed = Client::new(server.local_addr().to_string()).with_timeout(Duration::from_secs(5));
    let status = resumed
        .wait(
            id,
            Duration::from_millis(50),
            Some(Duration::from_secs(120)),
        )
        .expect("resumed job reaches a terminal state");
    let state = status
        .get("state")
        .and_then(gdf::core::json::Json::as_str)
        .unwrap_or("");
    assert_eq!(state, "done", "resumed job must finish: {status:?}");
    let artifact = resumed.artifact(id).expect("artifact after resume");
    RunArtifact::decode(&artifact).expect("resumed artifact decodes");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
