//! The result cache's headline guarantee, proven over real sockets:
//! a duplicate `POST /jobs` is answered **instantly Done from the
//! store**, and the artifact it serves is byte-identical both to the
//! first submission's artifact and to a local in-process run of the
//! same spec. Hits are exact because artifacts are canonical: same
//! circuit digest + same config digest ⇒ the same bytes would be
//! recomputed.
//!
//! Also covers: the `/metrics` surface (`gdf_cache_hits_total`,
//! `gdf_store_bytes`), `gc()` on a live server directory keeping every
//! referenced cache entry, cache survival across a server restart, and
//! the store's hostile-name rejection contract.

use gdf::core::json::Json;
use gdf::core::{Atpg, Backend, CircuitSource, RunArtifact, RunConfig};
use gdf::netlist::suite;
use gdf::serve::server::submission_for_suite;
use gdf::serve::{Client, JobServer, ServeConfig};
use gdf::store::{Store, StoreError};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-store-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(dir: &PathBuf, workers: usize) -> (JobServer, Client) {
    let server = JobServer::start(
        ServeConfig::new("127.0.0.1:0", dir)
            .with_workers(workers)
            .with_queue_capacity(16),
    )
    .expect("server starts");
    let client = Client::new(server.local_addr().to_string());
    (server, client)
}

fn local_canonical(suite_name: &str, config: RunConfig) -> String {
    let circuit = suite::by_name(suite_name).expect("suite circuit");
    let run = Atpg::builder(&circuit)
        .backend(config.backend)
        .model(config.model)
        .universe(config.universe)
        .limits(config.limits)
        .seed(config.seed)
        .build()
        .run();
    RunArtifact::from_run(
        &circuit,
        &run,
        config,
        Some(CircuitSource::suite(&circuit, suite_name)),
    )
    .canonical_encode()
}

/// Submits over raw HTTP so the response body's `cached` flag is
/// visible, returning `(id, cached)`.
fn submit_raw(addr: &str, submission: &Json) -> (u64, bool) {
    let body = submission.to_string();
    let response = gdf::serve::http::client_request(
        addr,
        "POST",
        "/jobs",
        Some(&body),
        Duration::from_secs(10),
    )
    .expect("http exchange");
    let text = String::from_utf8(response.body).expect("utf-8 response");
    assert_eq!(response.status, 201, "submit failed: {text}");
    let json = Json::parse(&text).expect("submit response is json");
    let id = json.get("id").and_then(Json::as_u64).expect("job id");
    let cached = json.get("cached").and_then(Json::as_bool).unwrap_or(false);
    (id, cached)
}

#[test]
fn duplicate_submission_is_served_from_the_cache_byte_identically() {
    let dir = temp_dir("dup");
    let (server, client) = start_server(&dir, 2);
    let addr = server.local_addr().to_string();
    let config = RunConfig::new(Backend::NonScan);
    let submission = submission_for_suite("suite:s27", &config);

    // First submission: a real generation run.
    let (first, first_cached) = submit_raw(&addr, &submission);
    assert!(!first_cached, "empty store cannot serve a hit");
    client
        .wait(
            first,
            Duration::from_millis(25),
            Some(Duration::from_secs(120)),
        )
        .expect("first job finishes");
    let first_bytes = client.artifact(first).expect("first artifact");

    // Second submission of the identical spec: answered from the store,
    // Done before we ever poll — no generation happened.
    let (second, second_cached) = submit_raw(&addr, &submission);
    assert!(second_cached, "duplicate spec was not served from cache");
    let status = client.status(second).expect("status");
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("done"),
        "cached job was not instantly done: {status}"
    );

    // Exactness: cached bytes ≡ first bytes ≡ a local recomputation.
    let second_bytes = client.artifact(second).expect("cached artifact");
    assert_eq!(second_bytes, first_bytes, "cache served different bytes");
    assert_eq!(
        second_bytes,
        local_canonical("s27", config),
        "cached artifact differs from a local run of the same spec"
    );

    // The hit and the store's footprint are visible in /metrics.
    let hits = client
        .metric("gdf_cache_hits_total")
        .expect("metrics")
        .expect("gdf_cache_hits_total exported");
    assert!(hits >= 1.0, "no cache hit counted: {hits}");
    let bytes = client
        .metric("gdf_store_bytes")
        .expect("metrics")
        .expect("gdf_store_bytes exported");
    assert!(bytes > 0.0, "store reports no bytes: {bytes}");

    // GC on the live directory keeps the referenced entry: the cache
    // still answers afterwards with the same bytes.
    let report = Store::open(dir.join("store"))
        .expect("open server store")
        .gc()
        .expect("gc");
    assert_eq!(report.swept_objects, 0, "gc swept a live cache object");
    assert!(report.live_objects >= 1);
    let (third, third_cached) = submit_raw(&addr, &submission);
    assert!(third_cached, "cache entry lost after gc");
    client
        .wait(
            third,
            Duration::from_millis(10),
            Some(Duration::from_secs(30)),
        )
        .expect("cached job readable");
    assert_eq!(client.artifact(third).expect("artifact"), first_bytes);

    server.shutdown();

    // The cache is on disk, not in memory: a fresh server on the same
    // directory serves the same hit.
    let (server, client) = start_server(&dir, 2);
    let (fourth, fourth_cached) = submit_raw(&server.local_addr().to_string(), &submission);
    assert!(fourth_cached, "cache did not survive a server restart");
    assert_eq!(client.artifact(fourth).expect("artifact"), first_bytes);

    // A *different* config is a different key — no false hit.
    let other = RunConfig::new(Backend::StuckAt);
    let (fifth, fifth_cached) = submit_raw(
        &server.local_addr().to_string(),
        &submission_for_suite("suite:s27", &other),
    );
    assert!(!fifth_cached, "different config produced a cache hit");
    client
        .wait(
            fifth,
            Duration::from_millis(25),
            Some(Duration::from_secs(120)),
        )
        .expect("stuck-at job finishes");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_store_names_are_rejected_with_a_named_error() {
    let dir = temp_dir("names");
    let store = Store::open(dir.join("store")).expect("open");
    let digest = store.put("{\"probe\": 1}\n").expect("put");
    for hostile in [
        "",
        ".",
        "..",
        "../escape",
        "/etc/passwd",
        "a/b",
        "a\\b",
        ".hidden",
        "nul\0byte",
        "spa ce",
    ] {
        let err = store.link(hostile, &digest).expect_err("must reject");
        assert!(
            matches!(err, StoreError::BadName(_)),
            "{hostile:?}: expected BadName, got {err}"
        );
        assert!(
            matches!(store.resolve(hostile), Err(StoreError::BadName(_))),
            "{hostile:?}: resolve accepted a hostile name"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
