//! The fleet layer's headline guarantee, proven over real sockets:
//! **fleet(2) ≡ fleet(1) ≡ local**, byte for byte in canonical encoding
//! — and the guarantee survives both failure modes the coordinator is
//! built for:
//!
//! 1. the **coordinator** killed between control rounds and resumed
//!    from `fleet.json`;
//! 2. a **node** killed mid-campaign (no disk updates — the `kill -9`
//!    path), its units stolen by the survivor.
//!
//! Plus the degenerate split: a universe oversplit into more units than
//! faults, producing empty units that complete without touching a node.

use gdf::core::{Atpg, Backend, CircuitSource, FaultClassification, RunArtifact, RunConfig};
use gdf::fleet::{Coordinator, FleetPlan, UnitState};
use gdf::netlist::{suite, FaultSet, FaultUniverse};
use gdf::serve::{JobServer, ServeConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_node(dir: &Path, workers: usize) -> JobServer {
    JobServer::start(ServeConfig::new("127.0.0.1:0", dir).with_workers(workers))
        .expect("node starts")
}

fn sources(names: &[&str]) -> Vec<CircuitSource> {
    names
        .iter()
        .map(|name| CircuitSource::suite(&suite::by_name(name).expect("suite circuit"), name))
        .collect()
}

/// What a local, in-process run of the same spec persists — the
/// reference every fleet merge must match byte for byte.
fn local_canonical(name: &str, config: RunConfig) -> String {
    let circuit = suite::by_name(name).expect("suite circuit");
    let run = Atpg::builder(&circuit)
        .backend(config.backend)
        .model(config.model)
        .universe(config.universe)
        .limits(config.limits)
        .seed(config.seed)
        .build()
        .run();
    RunArtifact::from_run(
        &circuit,
        &run,
        config,
        Some(CircuitSource::suite(&circuit, name)),
    )
    .canonical_encode()
}

fn merged_canonical(dir: &Path, name: &str) -> String {
    let path = dir.join(format!("{name}.run.json"));
    RunArtifact::load(&path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        .canonical_encode()
}

fn fast_coordinator(dir: &Path, plan: FleetPlan) -> Coordinator {
    Coordinator::create(dir, plan)
        .expect("coordinator creates")
        .with_poll(Duration::from_millis(25))
}

#[test]
fn fleet_of_two_and_fleet_of_one_match_a_local_run() {
    let config = RunConfig::new(Backend::NonScan);
    let names = ["s27", "s42"];

    // Two nodes, three units per circuit (uneven shard sizes included).
    let (na, nb) = (temp_dir("f2-node-a"), temp_dir("f2-node-b"));
    let (a, b) = (start_node(&na, 2), start_node(&nb, 2));
    let dir2 = temp_dir("f2-coord");
    let plan = FleetPlan::new(
        "two",
        vec![a.local_addr().to_string(), b.local_addr().to_string()],
        config,
        sources(&names),
        3,
    )
    .unwrap();
    assert_eq!(plan.units.len(), 6);
    let report2 = fast_coordinator(&dir2, plan)
        .run()
        .expect("fleet(2) converges");
    assert_eq!(report2.units, 6);
    assert_eq!(
        report2.nodes.iter().map(|n| n.units).sum::<usize>(),
        6,
        "every unit is harvested from some node"
    );

    // One node, same campaign.
    let nc = temp_dir("f1-node");
    let c = start_node(&nc, 2);
    let dir1 = temp_dir("f1-coord");
    let plan = FleetPlan::new(
        "one",
        vec![c.local_addr().to_string()],
        config,
        sources(&names),
        3,
    )
    .unwrap();
    fast_coordinator(&dir1, plan)
        .run()
        .expect("fleet(1) converges");

    for name in names {
        let reference = local_canonical(name, config);
        assert_eq!(
            merged_canonical(&dir2, name),
            reference,
            "fleet(2) diverged from the local run on {name}"
        );
        assert_eq!(
            merged_canonical(&dir1, name),
            reference,
            "fleet(1) diverged from the local run on {name}"
        );
    }
    // The fleet totals agree with the local reports they merged into.
    let totals = report2.campaign.totals();
    assert!(totals.tested > 0, "campaign found tests: {totals}");

    a.shutdown();
    b.shutdown();
    c.shutdown();
    for dir in [na, nb, nc, dir2, dir1] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn coordinator_killed_between_rounds_resumes_to_identical_bytes() {
    let config = RunConfig::new(Backend::NonScan);
    let nd = temp_dir("kr-node");
    let node = start_node(&nd, 2);
    let dir = temp_dir("kr-coord");
    let plan = FleetPlan::new(
        "kr",
        vec![node.local_addr().to_string()],
        config,
        sources(&["s27"]),
        4,
    )
    .unwrap();

    // One control round submits every unit, then the coordinator "dies"
    // — dropped without harvesting anything. The plan on disk is all
    // that survives.
    let mut first = fast_coordinator(&dir, plan);
    let done = first.step().expect("first round");
    assert!(!done, "nothing can be merged after one round");
    let submitted = first
        .plan()
        .units
        .iter()
        .filter(|u| matches!(u.state, UnitState::Submitted { .. }))
        .count();
    assert_eq!(submitted, 4, "round one submits every unit");
    drop(first);

    // A fresh coordinator reconciles against the node's real job state
    // and finishes to the same bytes as an uninterrupted local run.
    let report = Coordinator::resume(&dir)
        .expect("resume from fleet.json")
        .with_poll(Duration::from_millis(25))
        .run()
        .expect("resumed coordinator converges");
    assert_eq!(report.units, 4);
    assert_eq!(
        merged_canonical(&dir, "s27"),
        local_canonical("s27", config)
    );

    node.shutdown();
    let _ = std::fs::remove_dir_all(&nd);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn node_killed_mid_campaign_loses_its_units_to_the_survivor() {
    let config = RunConfig::new(Backend::NonScan);
    let (na, nb) = (temp_dir("steal-node-a"), temp_dir("steal-node-b"));
    let (a, b) = (start_node(&na, 2), start_node(&nb, 1));
    let survivor = a.local_addr().to_string();
    let victim = b.local_addr().to_string();
    let dir = temp_dir("steal-coord");
    let plan = FleetPlan::new(
        "steal",
        vec![survivor.clone(), victim.clone()],
        config,
        sources(&["s27", "s42"]),
        2,
    )
    .unwrap();

    // Round one spreads the 4 units across both nodes (least-loaded,
    // deterministic ties), then the victim dies the hard way: no
    // shutdown handshake, no disk updates.
    let mut coordinator = fast_coordinator(&dir, plan);
    coordinator.step().expect("first round");
    let on_victim = coordinator
        .plan()
        .units
        .iter()
        .filter(|u| matches!(&u.state, UnitState::Submitted { node, .. } if *node == victim))
        .count();
    assert!(on_victim > 0, "the victim node was assigned work");
    b.kill();

    let report = coordinator.run().expect("fleet survives the node kill");
    assert!(
        report.stolen >= on_victim,
        "{} unit(s) were on the dead node but only {} were reassigned",
        on_victim,
        report.stolen
    );
    let by_addr = |addr: &str| {
        report
            .nodes
            .iter()
            .find(|n| n.addr == *addr)
            .expect("node stats")
            .units
    };
    assert_eq!(by_addr(&survivor) + by_addr(&victim), 4);
    for name in ["s27", "s42"] {
        assert_eq!(
            merged_canonical(&dir, name),
            local_canonical(name, config),
            "post-steal merge diverged on {name}"
        );
    }

    a.shutdown();
    for dir in [na, nb, dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn oversplit_universe_yields_empty_units_and_identical_bytes() {
    // More units than faults: the tail units are empty and complete on
    // the coordinator without ever reaching a node.
    let mut config = RunConfig::new(Backend::NonScan);
    config.universe = FaultUniverse::stems_only();
    let circuit = suite::s27();
    let total = FaultSet::new(&circuit, config.universe, config.model).len();
    assert!(total > 0);

    let nd = temp_dir("empty-node");
    let node = start_node(&nd, 4);
    let dir = temp_dir("empty-coord");
    let plan = FleetPlan::new(
        "oversplit",
        vec![node.local_addr().to_string()],
        config,
        sources(&["s27"]),
        total + 3,
    )
    .unwrap();
    assert_eq!(plan.units.len(), total + 3);
    assert_eq!(plan.units.iter().filter(|u| u.is_empty()).count(), 3);

    let report = fast_coordinator(&dir, plan)
        .run()
        .expect("oversplit fleet converges");
    assert_eq!(
        report.nodes[0].units, total,
        "only the non-empty units travel to the node"
    );
    assert_eq!(
        merged_canonical(&dir, "s27"),
        local_canonical("s27", config)
    );
    // Sanity: the merged run actually classified faults.
    let artifact = RunArtifact::load(dir.join("s27.run.json")).unwrap();
    let run = artifact.to_run(&circuit).unwrap();
    assert_eq!(run.records.len(), total);
    assert!(run
        .records
        .iter()
        .any(|r| r.classification == FaultClassification::Tested));

    node.shutdown();
    let _ = std::fs::remove_dir_all(&nd);
    let _ = std::fs::remove_dir_all(&dir);
}
