//! Differential tests: the bit-parallel simulation substrate against its
//! scalar reference, over randomly generated circuits, sequences and
//! waveforms.
//!
//! The packed paths (64-lane 3-valued good machine, 64-lane FAUSIM
//! state-diff propagation, 64-fault-per-word TDsim, and the batched
//! three-phase `fault_simulate_sequence`) must be *classification-
//! identical* to the scalar implementations — same detections, same
//! observations, same order. These properties run over a deterministic
//! random sample (the workspace's vendored `rand` shim; no crates.io
//! proptest in this environment), with the failing case's inputs in the
//! panic message.

use gdf::algebra::Logic3;
use gdf::core::{DelayAtpg, DelayAtpgConfig, FsimScratch, TestSequence};
use gdf::netlist::generator::{generate, CircuitProfile};
use gdf::netlist::{Circuit, FaultUniverse, NodeId};
use gdf::sim::{
    detected_delay_faults, detected_delay_faults_packed, two_frame_values, Fausim, GoodSimulator,
    PackedGoodSim, PackedLogic, SimScratch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng_for(property: &str) -> StdRng {
    let tag: u64 = property.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    StdRng::seed_from_u64(tag)
}

/// A small random sequential circuit (profile-matched generator).
fn arb_circuit(rng: &mut StdRng, tag: usize) -> Circuit {
    let num_pi = rng.gen_range(2..6);
    let num_po = rng.gen_range(1..4);
    let num_dff = rng.gen_range(1..8);
    let num_gates = rng.gen_range(10..120);
    generate(&CircuitProfile::new(
        format!("diff{tag}"),
        num_pi,
        num_po,
        num_dff,
        num_gates,
        rng.gen(),
    ))
}

fn arb_bools(rng: &mut StdRng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen()).collect()
}

/// Packed 3-valued good-machine simulation equals 64 scalar runs.
#[test]
fn packed_goodsim_matches_scalar_on_random_circuits() {
    let mut rng = rng_for("packed_goodsim");
    for case in 0..20 {
        let c = arb_circuit(&mut rng, case);
        let scalar = GoodSimulator::new(&c);
        let packed = PackedGoodSim::new(&c);
        let mut pi = vec![PackedLogic::ALL_X; c.num_inputs()];
        let mut st = vec![PackedLogic::ALL_X; c.num_dffs()];
        for k in 0..64 {
            for p in pi.iter_mut() {
                p.set_lane(k, Logic3::ALL[rng.gen_range(0..3)]);
            }
            for s in st.iter_mut() {
                s.set_lane(k, Logic3::ALL[rng.gen_range(0..3)]);
            }
        }
        let mut values = Vec::new();
        packed.eval_comb_into(&pi, &st, &mut values);
        for k in [0usize, 17, 63] {
            let spi: Vec<Logic3> = pi.iter().map(|p| p.lane(k)).collect();
            let sst: Vec<Logic3> = st.iter().map(|s| s.lane(k)).collect();
            let svals = scalar.eval_comb(&spi, &sst);
            for (idx, v) in svals.iter().enumerate() {
                assert_eq!(
                    values[idx].lane(k),
                    *v,
                    "case {case} circuit {} node {idx} lane {k}",
                    c.name()
                );
            }
        }
    }
}

/// 64-lane FAUSIM state-diff propagation equals per-PPO scalar walks.
#[test]
fn packed_state_diff_propagation_matches_scalar() {
    let mut rng = rng_for("packed_fausim");
    let mut scratch = SimScratch::default();
    for case in 0..25 {
        let c = arb_circuit(&mut rng, 1000 + case);
        let fausim = Fausim::new(&c);
        let good: Vec<Logic3> = (0..c.num_dffs())
            .map(|_| Logic3::from_bool(rng.gen()))
            .collect();
        let frames = rng.gen_range(1..5);
        let vectors: Vec<Vec<Logic3>> = (0..frames)
            .map(|_| {
                (0..c.num_inputs())
                    .map(|_| Logic3::from_bool(rng.gen()))
                    .collect()
            })
            .collect();
        let diffs: Vec<usize> = (0..c.num_dffs()).collect();
        for chunk in diffs.chunks(64) {
            let mask = fausim.propagate_state_diffs_packed(&good, chunk, &vectors, &mut scratch);
            for (k, &d) in chunk.iter().enumerate() {
                let scalar = fausim.propagate_state_diff(&good, d, &vectors);
                assert_eq!(
                    mask >> k & 1 == 1,
                    scalar.is_observed(),
                    "case {case} circuit {} dff {d}",
                    c.name()
                );
            }
        }
    }
}

/// Packed TDsim classification (faults, observations, order) equals the
/// scalar cone trace, including PPO observability and invalidation.
#[test]
fn packed_tdsim_matches_scalar_on_random_circuits() {
    let mut rng = rng_for("packed_tdsim");
    let mut scratch = SimScratch::default();
    for case in 0..25 {
        let c = arb_circuit(&mut rng, 2000 + case);
        let faults = FaultUniverse::default().delay_faults(&c);
        let ppos = c.ppos().to_vec();
        for _ in 0..4 {
            let v1 = arb_bools(&mut rng, c.num_inputs());
            let v2 = arb_bools(&mut rng, c.num_inputs());
            let st = arb_bools(&mut rng, c.num_dffs());
            let w = two_frame_values(&c, &v1, &v2, &st);
            // Random observable/required PPO subsets stress every path.
            let obs: Vec<NodeId> = ppos.iter().copied().filter(|_| rng.gen()).collect();
            let req: Vec<NodeId> = ppos.iter().copied().filter(|_| rng.gen()).collect();
            let scalar = detected_delay_faults(&c, &w, &faults, &obs, &req);
            let packed = detected_delay_faults_packed(&c, &w, &faults, &obs, &req, &mut scratch);
            assert_eq!(
                scalar,
                packed,
                "case {case} circuit {} obs {obs:?} req {req:?}",
                c.name()
            );
        }
    }
}

/// A random at-speed test sequence over a random circuit.
fn arb_sequence(rng: &mut StdRng, c: &Circuit) -> TestSequence {
    let frame = |rng: &mut StdRng, c: &Circuit| -> Vec<Logic3> {
        (0..c.num_inputs())
            .map(|_| match rng.gen_range(0..3) {
                0 => Logic3::Zero,
                1 => Logic3::One,
                _ => Logic3::X,
            })
            .collect()
    };
    let init: Vec<Vec<Logic3>> = (0..rng.gen_range(0..4)).map(|_| frame(rng, c)).collect();
    let prop: Vec<Vec<Logic3>> = (0..rng.gen_range(0..4)).map(|_| frame(rng, c)).collect();
    let v1 = frame(rng, c);
    let v2 = frame(rng, c);
    TestSequence::new(init, v1, v2, prop)
}

/// The batched three-phase `fault_simulate_sequence` equals the scalar
/// reference for identical RNG streams, over random circuits and random
/// sequences (X-fill included).
#[test]
fn packed_fault_simulate_sequence_matches_scalar_reference() {
    let mut rng = rng_for("packed_fsim_sequence");
    let mut scratch = FsimScratch::default();
    for case in 0..20 {
        let c = arb_circuit(&mut rng, 3000 + case);
        let atpg = DelayAtpg::new(&c);
        let faults = FaultUniverse::default().delay_faults(&c);
        let ppos = c.ppos().to_vec();
        for round in 0..4 {
            let seq = arb_sequence(&mut rng, &c);
            let relied: Vec<NodeId> = ppos.iter().copied().filter(|_| rng.gen()).collect();
            let seed: u64 = rng.gen();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let packed = atpg
                .fault_simulate_sequence(&seq, &relied, &faults, &mut rng_a, &mut scratch)
                .expect("at-speed sequence");
            let scalar = atpg
                .fault_simulate_sequence_scalar(&seq, &relied, &faults, &mut rng_b)
                .expect("at-speed sequence");
            assert_eq!(
                packed,
                scalar,
                "case {case} round {round} circuit {} seed {seed:#x}",
                c.name()
            );
        }
    }
}

/// Static (all-slow) sequences are rejected with an error, not a panic.
#[test]
fn static_sequences_are_rejected_gracefully() {
    let c = gdf::netlist::suite::s27();
    let atpg = DelayAtpg::new(&c);
    let faults = FaultUniverse::default().delay_faults(&c);
    let seq = TestSequence::static_sequence(vec![vec![Logic3::Zero; 4]; 3]);
    let mut rng = StdRng::seed_from_u64(1);
    let mut scratch = FsimScratch::default();
    let packed = atpg.fault_simulate_sequence(&seq, &[], &faults, &mut rng, &mut scratch);
    assert_eq!(packed, Err(gdf::core::AtpgError::StaticSequence));
    let scalar = atpg.fault_simulate_sequence_scalar(&seq, &[], &faults, &mut rng);
    assert_eq!(scalar, Err(gdf::core::AtpgError::StaticSequence));
}

/// The `reference_fsim` config knob actually flips the implementation and
/// the dispatching entry point honors it.
#[test]
fn reference_fsim_config_dispatches_to_scalar() {
    let c = gdf::netlist::suite::s27();
    let reference = DelayAtpg::with_config(&c, DelayAtpgConfig::new().with_reference_fsim(true));
    let faults = FaultUniverse::default().delay_faults(&c);
    let seq = TestSequence::new(
        vec![vec![Logic3::Zero; 4]],
        vec![Logic3::Zero; 4],
        vec![Logic3::One, Logic3::Zero, Logic3::Zero, Logic3::Zero],
        vec![vec![Logic3::X; 4]],
    );
    let seed = 42;
    let mut rng_a = StdRng::seed_from_u64(seed);
    let mut rng_b = StdRng::seed_from_u64(seed);
    let mut scratch = FsimScratch::default();
    let via_config = reference
        .fault_simulate_sequence(&seq, &[], &faults, &mut rng_a, &mut scratch)
        .expect("at-speed");
    let direct = reference
        .fault_simulate_sequence_scalar(&seq, &[], &faults, &mut rng_b)
        .expect("at-speed");
    assert_eq!(via_config, direct);
}
