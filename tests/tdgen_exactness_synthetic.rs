//! TDgen exactness on *synthetic* circuits (generator + ATPG cross-check).
//!
//! Brute-force enumeration over all `(V1, V2, S1)` triples must agree with
//! TDgen's testable/untestable verdicts on small generated circuits —
//! including ones with the load/hold state structures — so the high
//! untestable fractions measured on the larger synthetic benchmarks are a
//! property of the circuits, not an ATPG bug.

use gdf_netlist::generator::{generate, CircuitProfile};
use gdf_netlist::{Circuit, FaultUniverse, NodeId};
use gdf_sim::{detected_delay_faults, two_frame_values};
use gdf_tdgen::{TdGen, TdGenOutcome};

fn brute_force_testable(c: &Circuit) -> Vec<bool> {
    let faults = FaultUniverse::default().delay_faults(c);
    let all_ppos: Vec<NodeId> = c.ppos().to_vec();
    let n_pi = c.num_inputs();
    let n_ff = c.num_dffs();
    assert!(n_pi <= 4 && n_ff <= 3, "keep enumeration small");
    let mut testable = vec![false; faults.len()];
    for v1pat in 0u32..(1 << n_pi) {
        for v2pat in 0u32..(1 << n_pi) {
            for spat in 0u32..(1 << n_ff) {
                let v1: Vec<bool> = (0..n_pi).map(|i| v1pat & (1 << i) != 0).collect();
                let v2: Vec<bool> = (0..n_pi).map(|i| v2pat & (1 << i) != 0).collect();
                let st: Vec<bool> = (0..n_ff).map(|i| spat & (1 << i) != 0).collect();
                let w = two_frame_values(c, &v1, &v2, &st);
                for (idx, _) in detected_delay_faults(c, &w, &faults, &all_ppos, &[]) {
                    testable[idx] = true;
                }
            }
        }
    }
    testable
}

fn check_exact(c: &Circuit) {
    let faults = FaultUniverse::default().delay_faults(c);
    let testable = brute_force_testable(c);
    let gen = TdGen::new(c);
    for (i, &fault) in faults.iter().enumerate() {
        match gen.generate(fault) {
            TdGenOutcome::Test(_) => assert!(
                testable[i],
                "{}: TDgen test but brute force says untestable ({})",
                c.name(),
                fault.describe(c)
            ),
            TdGenOutcome::Untestable => assert!(
                !testable[i],
                "{}: TDgen untestable but brute force found a test ({})",
                c.name(),
                fault.describe(c)
            ),
            TdGenOutcome::Aborted => {
                // Aborts are allowed (the limit is real); they just must
                // not be misclassified. Nothing to check.
            }
        }
    }
}

#[test]
fn exact_on_small_synthetic_circuits() {
    for seed in [1u64, 7, 23, 99] {
        let p = CircuitProfile::new(format!("tiny{seed}"), 3, 2, 2, 18, seed);
        let c = generate(&p);
        check_exact(&c);
    }
}

#[test]
fn exact_on_synthetic_with_hold_structures() {
    // Enough gates to trigger the load/hold allocation (> 8 gates).
    for seed in [3u64, 41] {
        let p = CircuitProfile::new(format!("hold{seed}"), 4, 2, 3, 24, seed);
        let c = generate(&p);
        check_exact(&c);
    }
}
