//! Observability is strictly a side channel: canonical artifact bytes
//! are identical with every hook enabled, disabled, or mixed —
//! locally, over the serve API, and across a traced fleet.

use gdf::core::{Atpg, Backend, CircuitSource, RunArtifact, RunConfig};
use gdf::fleet::{Coordinator, FleetPlan};
use gdf::netlist::suite;
use gdf::obs::{Profiler, Registry};
use gdf::serve::server::submission_for_suite;
use gdf::serve::{Client, JobServer, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-obsd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn local_canonical(name: &str, config: RunConfig) -> String {
    let circuit = suite::by_name(name).expect("suite circuit");
    let run = Atpg::builder(&circuit)
        .backend(config.backend)
        .seed(config.seed)
        .build()
        .run();
    RunArtifact::from_run(
        &circuit,
        &run,
        config,
        Some(CircuitSource::suite(&circuit, name)),
    )
    .canonical_encode()
}

#[test]
fn profiler_and_phase_sink_leave_canonical_bytes_untouched() {
    let config = RunConfig::new(Backend::NonScan);
    let reference = local_canonical("s27", config);

    // Same run with the full instrumentation stack attached: the phase
    // sink feeding a live registry, plus the profiler observer.
    let registry = Registry::new();
    gdf::obs::install_phase_sink(registry.clone());
    let (profiler, handle) = Profiler::new();
    let circuit = suite::s27();
    let run = Atpg::builder(&circuit)
        .backend(config.backend)
        .seed(config.seed)
        .observer(profiler)
        .build()
        .run();
    let instrumented = RunArtifact::from_run(
        &circuit,
        &run,
        config,
        Some(CircuitSource::suite(&circuit, "s27")),
    )
    .canonical_encode();
    assert_eq!(
        instrumented, reference,
        "profiler/phase sink changed canonical bytes"
    );
    // The instrumentation did observe the run — it's a side channel,
    // not a no-op.
    let profile = handle.snapshot();
    assert!(profile.decided > 0, "profiler saw no outcomes");
    assert!(
        registry.render().contains("gdf_engine_phase_seconds"),
        "phase sink recorded nothing"
    );
}

#[test]
fn served_runs_with_obs_on_and_off_are_byte_identical() {
    let config = RunConfig::new(Backend::NonScan);
    let submission = submission_for_suite("suite:s27", &config);

    let fetch = |server: JobServer, client: Client| {
        let id = client.submit(&submission).expect("submit");
        client
            .wait(
                id,
                Duration::from_millis(25),
                Some(Duration::from_secs(120)),
            )
            .expect("job finishes");
        let artifact = client.artifact(id).expect("artifact");
        server.shutdown();
        artifact
    };

    let dir_on = temp_dir("obs-on");
    let on = JobServer::start(ServeConfig::new("127.0.0.1:0", &dir_on).with_workers(2))
        .expect("obs-on server");
    let client = Client::new(on.local_addr().to_string());
    let with_obs = fetch(on, client);

    let dir_off = temp_dir("obs-off");
    let off = JobServer::start(
        ServeConfig::new("127.0.0.1:0", &dir_off)
            .with_workers(2)
            .with_obs(false),
    )
    .expect("obs-off server");
    let client = Client::new(off.local_addr().to_string());
    let without_obs = fetch(off, client);

    let reference = local_canonical("s27", config);
    assert_eq!(with_obs, reference, "obs-on served run diverged");
    assert_eq!(without_obs, reference, "obs-off served run diverged");

    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
}

#[test]
fn traced_fleet_of_two_matches_local_and_shares_one_campaign_trace() {
    let config = RunConfig::new(Backend::NonScan);
    let (na, nb) = (temp_dir("fleet-node-a"), temp_dir("fleet-node-b"));
    let a = JobServer::start(ServeConfig::new("127.0.0.1:0", &na).with_workers(2)).expect("node a");
    let b = JobServer::start(ServeConfig::new("127.0.0.1:0", &nb).with_workers(2)).expect("node b");
    let dir = temp_dir("fleet-coord");
    let circuit = suite::s27();
    let plan = FleetPlan::new(
        "traced",
        vec![a.local_addr().to_string(), b.local_addr().to_string()],
        config,
        vec![CircuitSource::suite(&circuit, "s27")],
        3,
    )
    .unwrap();
    let mut coordinator = Coordinator::create(&dir, plan)
        .expect("coordinator creates")
        .with_poll(Duration::from_millis(25));
    let campaign = coordinator.trace();
    coordinator.run().expect("fleet(2) converges");

    // Merged bytes identical to a local run, trace propagation and all.
    let merged = RunArtifact::load(dir.join("s27.run.json"))
        .unwrap()
        .canonical_encode();
    assert_eq!(
        merged,
        local_canonical("s27", config),
        "traced fleet(2) diverged from the local run"
    );

    // Every shard job on every node carries the campaign's trace id —
    // one grep correlates the whole distributed run.
    let campaign_trace = campaign.trace.hex();
    let mut shard_jobs = 0;
    for (node, node_dir) in [(&a, &na), (&b, &nb)] {
        let client = Client::new(node.local_addr().to_string());
        let list = client.list().expect("job list");
        for job in list
            .get("jobs")
            .and_then(|j| j.as_array())
            .expect("jobs array")
        {
            let id = job
                .get("id")
                .and_then(gdf::core::json::Json::as_u64)
                .expect("job id");
            let status = client.status(id).expect("status");
            let trace = status
                .get("trace")
                .and_then(gdf::core::json::Json::as_str)
                .unwrap_or_else(|| panic!("shard job {id} has no trace: {status}"));
            assert_eq!(
                &trace[..32],
                campaign_trace,
                "job {id} on {} left the campaign trace",
                node_dir.display()
            );
            shard_jobs += 1;
        }
    }
    assert!(shard_jobs > 0, "no shard jobs reached the nodes");

    a.shutdown();
    b.shutdown();
    for d in [na, nb, dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
