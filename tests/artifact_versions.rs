//! Artifact version/schema failure paths: corrupt, truncated and
//! future-version documents must produce friendly [`ArtifactError`]s —
//! never a panic. Run as a test binary so every decode failure below
//! doubles as a no-panic proof.

use gdf::core::json::Json;
use gdf::core::{ArtifactError, Atpg, Backend, PatternSet, RunArtifact, RunConfig};
use gdf::netlist::suite;

fn sample_artifact() -> String {
    let c = suite::s27();
    let run = Atpg::builder(&c).backend(Backend::StuckAt).build().run();
    RunArtifact::from_run(&c, &run, RunConfig::new(Backend::StuckAt), None).encode()
}

fn sample_patterns() -> String {
    let c = suite::s27();
    let run = Atpg::builder(&c).build().run();
    PatternSet::from_run(&c, &run, "non-scan", 0x1995_0308, None).encode()
}

/// Bumps the version field of a valid artifact to `version`.
fn with_version(text: &str, version: f64) -> String {
    let mut j = Json::parse(text).expect("valid artifact");
    if let Json::Obj(fields) = &mut j {
        for (k, v) in fields.iter_mut() {
            if k == "version" {
                *v = Json::Num(version);
            }
        }
    }
    j.pretty()
}

#[test]
fn future_versions_are_rejected_with_a_friendly_error() {
    let text = with_version(&sample_artifact(), 99.0);
    match RunArtifact::decode(&text) {
        Err(ArtifactError::Schema(message)) => {
            assert!(
                message.contains("version 99") && message.contains("v1"),
                "error names the version and the supported range: {message}"
            );
        }
        other => panic!("expected a schema error, got {other:?}"),
    }
}

#[test]
fn truncated_artifacts_error_instead_of_panicking() {
    let text = sample_artifact();
    // Every prefix must fail cleanly: valid JSON prefixes (there are
    // none for an object, but be thorough) decode to schema errors,
    // invalid ones to JSON errors.
    let step = (text.len() / 97).max(1);
    for end in (0..text.len()).step_by(step) {
        let truncated = &text[..end];
        match RunArtifact::decode(truncated) {
            Ok(_) => panic!("truncated artifact ({end} bytes) decoded"),
            Err(ArtifactError::Json(_) | ArtifactError::Schema(_)) => {}
            Err(other) => panic!("unexpected error class at {end} bytes: {other:?}"),
        }
    }
}

#[test]
fn corrupt_field_values_error_instead_of_panicking() {
    let pristine = sample_artifact();
    let corruptions: &[(&str, &str)] = &[
        // Wrong enum spellings.
        ("\"backend\": \"stuck-at\"", "\"backend\": \"quantum\""),
        ("\"model\": \"stuck\"", "\"model\": \"wobbly\""),
        (
            "\"sensitization\": \"robust\"",
            "\"sensitization\": \"maybe\"",
        ),
        // Type confusion.
        ("\"partial\": false", "\"partial\": \"no\""),
        ("\"records\": [", "\"records\": 17, \"ignored\": ["),
        // Structurally poisoned RNG state.
        (
            "\"rng_state\": [",
            "\"rng_state\": [\"0x0\", \"0x0\", \"0x0\", \"0x0\"], \"old\": [",
        ),
        // Unknown classification.
        ("\"class\": \"tested\"", "\"class\": \"vibes\""),
        // Bad hex.
        ("\"seed\": \"0x", "\"seed\": \"0xZZ"),
    ];
    for (from, to) in corruptions {
        assert!(
            pristine.contains(from),
            "corruption target `{from}` not found — update the test"
        );
        let corrupt = pristine.replacen(from, to, 1);
        match RunArtifact::decode(&corrupt) {
            Ok(_) => panic!("corrupt artifact (`{from}` -> `{to}`) decoded"),
            Err(ArtifactError::Json(_) | ArtifactError::Schema(_)) => {}
            Err(other) => panic!("unexpected error class for `{to}`: {other:?}"),
        }
    }
}

#[test]
fn foreign_and_garbage_documents_error_cleanly() {
    for garbage in [
        "",
        "null",
        "42",
        "[]",
        "{}",
        "{\"format\": \"gdf-patterns\"}",
        "\u{0}\u{1}\u{2}",
        "{\"format\": \"gdf-run\", \"version\": \"two\"}",
    ] {
        assert!(
            RunArtifact::decode(garbage).is_err(),
            "garbage `{garbage:?}` decoded as a run artifact"
        );
        assert!(
            PatternSet::decode(garbage).is_err(),
            "garbage `{garbage:?}` decoded as a pattern set"
        );
    }
}

#[test]
fn truncated_pattern_sets_error_instead_of_panicking() {
    let text = sample_patterns();
    let step = (text.len() / 53).max(1);
    for end in (0..text.len()).step_by(step) {
        assert!(
            PatternSet::decode(&text[..end]).is_err(),
            "truncated pattern set ({end} bytes) decoded"
        );
    }
}

#[test]
fn load_reports_io_errors_with_the_path() {
    let missing = std::env::temp_dir().join("gdf-definitely-not-here.json");
    match RunArtifact::load(&missing) {
        Err(ArtifactError::Io(message)) => {
            assert!(message.contains("gdf-definitely-not-here"), "{message}")
        }
        other => panic!("expected an I/O error, got {other:?}"),
    }
}
