//! Acceptance tests for the persistent-run layer: artifact round trips
//! through real files, interrupted-then-resumed runs byte-identical to
//! uninterrupted ones, and campaign aggregation/resumption.

use gdf::core::{
    grade_patterns, Atpg, AtpgError, AtpgRun, Backend, Campaign, FaultRecord, ModelKind, Observer,
    PatternSet, RunArtifact, RunConfig,
};
use gdf::netlist::{suite, FaultUniverse};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gdf-it-{tag}-{}.json", std::process::id()))
}

/// Cancels a run after `n` fault outcomes have streamed.
struct CancelAfter {
    remaining: usize,
}

impl Observer for CancelAfter {
    fn on_fault(&mut self, _record: &FaultRecord) {
        self.remaining = self.remaining.saturating_sub(1);
    }
    fn cancelled(&mut self) -> bool {
        self.remaining == 0
    }
}

fn assert_same_run(a: &AtpgRun, b: &AtpgRun, what: &str) {
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.sequences, b.sequences, "{what}: sequences");
    assert_eq!(a.relied_ppos, b.relied_ppos, "{what}: relied PPOs");
    assert_eq!(
        a.report.row.normalized(),
        b.report.row.normalized(),
        "{what}: report row"
    );
    assert_eq!(
        a.report.dropped_by_simulation, b.report.dropped_by_simulation,
        "{what}: dropped"
    );
    assert_eq!(
        a.report.sequences, b.report.sequences,
        "{what}: sequences count"
    );
}

/// The headline guarantee: a run interrupted mid-flight and resumed from
/// its checkpoint produces an `AtpgRun` byte-identical to one that was
/// never interrupted, for every backend (same seed).
#[test]
fn interrupted_then_resumed_is_byte_identical() {
    let c = suite::s27();
    for (backend, cancel_after, tag) in [
        (Backend::NonScan, 20, "nonscan"),
        (Backend::EnhancedScan, 25, "scan"),
        (Backend::StuckAt, 25, "stuckat"),
    ] {
        let clean = Atpg::builder(&c).backend(backend).seed(7).build().run();
        assert!(clean.stopped.is_none());

        let path = temp_path(&format!("resume-{tag}"));
        let _ = std::fs::remove_file(&path);
        let interrupted = Atpg::builder(&c)
            .backend(backend)
            .seed(7)
            .checkpoint(&path, 5)
            .observer(CancelAfter {
                remaining: cancel_after,
            })
            .build()
            .run();
        assert_eq!(interrupted.stopped, Some(AtpgError::Cancelled), "{tag}");
        assert!(path.exists(), "{tag}: checkpoint written before the cancel");

        let artifact = RunArtifact::load(&path).unwrap();
        assert!(artifact.partial, "{tag}");
        let decided_at_checkpoint = artifact.decided();
        assert!(
            decided_at_checkpoint > 0 && decided_at_checkpoint < clean.records.len(),
            "{tag}: checkpoint is genuinely mid-run ({decided_at_checkpoint})"
        );

        let resumed = Atpg::builder(&c)
            .resume_from(&artifact)
            .unwrap()
            .build()
            .run();
        assert!(resumed.stopped.is_none(), "{tag}");
        assert_same_run(&clean, &resumed, tag);

        // Resume composes with parallel generation, still byte-identical.
        let resumed_par = Atpg::builder(&c)
            .resume_from(&artifact)
            .unwrap()
            .parallelism(4)
            .build()
            .run();
        assert_same_run(&clean, &resumed_par, &format!("{tag} (parallel)"));

        let _ = std::fs::remove_file(&path);
    }
}

/// Artifacts survive a real disk round trip losslessly, and completed
/// artifacts reconstruct the exact run.
#[test]
fn artifact_file_round_trip() {
    let c = suite::s27();
    let run = Atpg::builder(&c)
        .backend(Backend::NonScan)
        .seed(3)
        .build()
        .run();
    let path = temp_path("roundtrip");
    let artifact = RunArtifact::from_run(
        &c,
        &run,
        RunConfig::new(Backend::NonScan).with_seed(3),
        None,
    );
    artifact.save(&path).unwrap();
    let loaded = RunArtifact::load(&path).unwrap();
    let restored = loaded.to_run(&c).unwrap();
    assert_same_run(&run, &restored, "file round trip");
    assert_eq!(restored.report.row.elapsed, run.report.row.elapsed);
    // The embedded bench source reconstructs an equivalent circuit.
    let c2 = loaded.circuit.resolve().unwrap();
    assert_eq!(c2.stats().to_string(), c.stats().to_string());
    let _ = std::fs::remove_file(&path);
}

/// Pattern sets exported from a run re-grade on a freshly re-parsed
/// circuit (artifacts are self-contained).
#[test]
fn pattern_sets_grade_standalone() {
    let c = suite::s27();
    let seed = 0x1995_0308;
    let run = Atpg::builder(&c).seed(seed).build().run();
    let set = PatternSet::from_run(&c, &run, "non-scan", seed, None);
    let path = temp_path("patterns");
    set.save(&path).unwrap();
    let loaded = PatternSet::load(&path).unwrap();
    assert_eq!(loaded, set);
    // Grade on the circuit reconstructed from the artifact alone.
    let c2 = loaded.circuit.resolve().unwrap();
    let grade = grade_patterns(
        &c2,
        &loaded,
        ModelKind::Delay,
        &FaultUniverse::default(),
        seed,
    )
    .unwrap();
    assert!(grade.detected() > 0);
    assert!(grade.coverage() <= 1.0);
    let _ = std::fs::remove_file(&path);
}

/// A campaign over suite + embedded circuits aggregates per-circuit
/// reports, and a second campaign over the same artifact directory
/// reloads every circuit instead of re-running.
#[test]
fn campaign_persists_and_resumes() {
    let dir = std::env::temp_dir().join(format!("gdf-it-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let circuits = || {
        vec![
            suite::s27(),
            suite::extra_circuit("s42").unwrap(),
            suite::extra_circuit("s77").unwrap(),
        ]
    };
    let first = Campaign::builder()
        .backend(Backend::StuckAt)
        .circuits(circuits())
        .artifact_dir(&dir)
        .run();
    assert_eq!(first.circuits.len(), 3);
    assert_eq!(first.resumed, 0);
    assert!(first.warnings.is_empty(), "{:?}", first.warnings);
    let totals = first.totals();
    assert_eq!(
        totals.total_faults(),
        first
            .circuits
            .iter()
            .map(|r| r.row.total_faults())
            .sum::<u32>()
    );
    let rendered = first.render();
    assert!(rendered.contains("s27") && rendered.contains("s42") && rendered.contains("TOTAL"));

    let second = Campaign::builder()
        .backend(Backend::StuckAt)
        .circuits(circuits())
        .artifact_dir(&dir)
        .resume(true)
        .run();
    assert_eq!(second.resumed, 3, "all circuits loaded from artifacts");
    for (a, b) in first.circuits.iter().zip(&second.circuits) {
        assert_eq!(a.row.normalized(), b.row.normalized());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A campaign interrupted mid-circuit leaves a partial checkpoint that a
/// resumed campaign finishes — with per-circuit results identical to a
/// campaign that was never interrupted.
#[test]
fn campaign_resumes_partial_circuits() {
    let dir = std::env::temp_dir().join(format!("gdf-it-campresume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let circuits = || vec![suite::s27(), suite::extra_circuit("s42").unwrap()];

    let clean = Campaign::builder()
        .backend(Backend::StuckAt)
        .circuits(circuits())
        .run();

    // Interrupt during the first circuit; checkpoints go to the dir.
    let interrupted = Campaign::builder()
        .backend(Backend::StuckAt)
        .circuits(circuits())
        .artifact_dir(&dir)
        .checkpoint_every(5)
        .observer(CancelAfter { remaining: 20 })
        .run();
    assert!(interrupted.stopped, "observer cancelled the campaign");
    assert!(interrupted.circuits.len() < 2 || interrupted.circuits[1].row.aborted > 0);

    let finished = Campaign::builder()
        .backend(Backend::StuckAt)
        .circuits(circuits())
        .artifact_dir(&dir)
        .resume(true)
        .run();
    assert!(!finished.stopped);
    assert!(finished.resumed > 0);
    assert_eq!(finished.circuits.len(), 2);
    for (a, b) in clean.circuits.iter().zip(&finished.circuits) {
        assert_eq!(
            a.row.normalized(),
            b.row.normalized(),
            "resumed campaign matches the uninterrupted one"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
