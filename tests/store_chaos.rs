//! GC under deterministic disk chaos: with torn writes, stale temps,
//! `ENOSPC` and partial reads injected into every facade I/O under the
//! store root, `gc()` must **never orphan a live object** (a name that
//! still resolves always returns its digest-verified content) and
//! **never resurrect a dead one** (an unreferenced object reclaimed by
//! a clean sweep stays gone). The store's defenses under test: writes
//! verify by raw read-back, and every destructive decision (sweep,
//! corrupt verdict) re-reads raw, so injected read faults can degrade
//! throughput but never delete live data.

use gdf::chaos::{ChaosDisk, ChaosGuard, ChaosSchedule};
use gdf::store::{Digest, Store};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-store-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gc_under_disk_chaos_never_orphans_live_or_resurrects_dead() {
    for seed in 0..12u64 {
        let root = temp_dir(&format!("gc-{seed}"));
        let store = Store::open(&root).expect("open");

        // Clean pre-population: four live (named) objects, three dead
        // (unreferenced) ones.
        let mut live: Vec<(String, Digest)> = Vec::new();
        for i in 0..4 {
            let text = format!("{{\"live\": {i}, \"seed\": {seed}}}\n");
            let name = format!("live-{i}");
            let digest = store.publish(&name, &text).expect("publish");
            live.push((name, digest));
        }
        let dead: Vec<Digest> = (0..3)
            .map(|i| {
                store
                    .put(&format!("{{\"dead\": {i}, \"seed\": {seed}}}\n"))
                    .expect("put")
            })
            .collect();

        // Chaotic workload: puts, publishes, unlinks and gc passes all
        // racing injected faults. Individual operations may fail — the
        // invariants below must hold regardless.
        let schedule = Arc::new(ChaosSchedule::new(0x6C1D ^ seed, 0.25));
        let guard = ChaosGuard::install(ChaosDisk::new(Arc::clone(&schedule), &root));
        for i in 0..10 {
            let _ = store.put(&format!("{{\"chaos\": {i}}}\n"));
            let _ = store.publish(&format!("chaos-{i}"), &format!("{{\"named\": {i}}}\n"));
            let _ = store.unlink(&format!("chaos-{}", i / 2));
            let _ = store.gc();
        }
        drop(guard);
        assert!(schedule.injected() > 0, "seed {seed}: chaos never fired");

        // Live objects survived every chaotic gc, content intact.
        for (name, digest) in &live {
            let text = store
                .get_named(name)
                .unwrap_or_else(|e| panic!("seed {seed}: live name {name} unreadable: {e}"))
                .unwrap_or_else(|| panic!("seed {seed}: live name {name} orphaned by gc"));
            assert_eq!(
                Digest::of_text(&text),
                *digest,
                "seed {seed}: {name} resolved to corrupted content"
            );
        }

        // A clean sweep reclaims exactly the unreferenced objects...
        store.gc().expect("clean gc");
        for digest in &dead {
            assert!(
                !store.contains(digest),
                "seed {seed}: dead object {digest} survived a clean gc"
            );
        }
        // ...and they stay dead: another pass cannot bring them back.
        store.gc().expect("second clean gc");
        for digest in &dead {
            assert!(
                !store.contains(digest),
                "seed {seed}: dead object {digest} resurrected"
            );
        }
        // The store still works after the storm: round-trip a fresh doc.
        let digest = store
            .publish("after-the-storm", "{\"ok\": true}\n")
            .expect("publish");
        assert_eq!(
            store.get_named("after-the-storm").expect("get").as_deref(),
            Some("{\"ok\": true}\n")
        );
        assert!(store.contains(&digest));
        let _ = std::fs::remove_dir_all(&root);
    }
}
