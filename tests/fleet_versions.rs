//! Hostile-bytes coverage for the fleet layer's persistent documents —
//! the plan (`fleet.json`) and the shard (`shards/unit-<k>.json`).
//! Empty, truncated, future-version, duplicated and garbage documents
//! must produce friendly typed errors, never a panic; a corrupt shard
//! discovered at merge time is quarantined to `*.corrupt` and its unit
//! recomputed.

use gdf::core::shard::ShardArtifact;
use gdf::core::{ArtifactError, Backend, CircuitSource, RunConfig};
use gdf::fleet::{Coordinator, FleetError, FleetPlan, UnitState, FLEET_VERSION};
use gdf::netlist::suite;
use gdf::serve::{JobServer, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-fleetv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_plan() -> String {
    FleetPlan::new(
        "hostile",
        vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
        RunConfig::new(Backend::StuckAt),
        vec![
            CircuitSource::suite(&suite::s27(), "s27"),
            CircuitSource::suite(&suite::by_name("s42").unwrap(), "s42"),
        ],
        3,
    )
    .unwrap()
    .encode()
}

fn sample_shard() -> String {
    let circuit = suite::s27();
    let mut shard = ShardArtifact::new(
        &circuit,
        Some(CircuitSource::suite(&circuit, "s27")),
        RunConfig::new(Backend::StuckAt),
        0,
        4,
    )
    .unwrap();
    shard.run(&circuit, |_| true).unwrap();
    shard.encode(&circuit)
}

#[test]
fn truncated_plans_error_instead_of_panicking() {
    let text = sample_plan();
    let step = (text.len() / 97).max(1);
    for end in (0..text.len()).step_by(step) {
        match FleetPlan::decode(&text[..end]) {
            Ok(_) => panic!("truncated plan ({end} bytes) decoded"),
            Err(FleetError::Artifact(ArtifactError::Json(_) | ArtifactError::Schema(_))) => {}
            Err(other) => panic!("unexpected error class at {end} bytes: {other}"),
        }
    }
}

#[test]
fn future_plan_versions_are_rejected_with_a_friendly_error() {
    let future = sample_plan().replacen(
        &format!("\"version\": {FLEET_VERSION}"),
        "\"version\": 99",
        1,
    );
    assert_ne!(future, sample_plan(), "version field not found in the plan");
    match FleetPlan::decode(&future) {
        Err(FleetError::Artifact(ArtifactError::Schema(message))) => {
            assert!(
                message.contains("99"),
                "error names the unsupported version: {message}"
            );
        }
        other => panic!("expected a schema error, got {other:?}"),
    }
}

#[test]
fn duplicated_units_are_rejected() {
    let plan = sample_plan();
    // Duplicate the first unit object verbatim inside the units array.
    let marker = "\"units\": [";
    let start = plan.find(marker).expect("units array") + marker.len();
    let end = start + plan[start..].find('}').expect("unit object") + 1;
    let first_unit = &plan[start..end];
    let duplicated = format!(
        "{}{},{}{}",
        &plan[..start],
        first_unit,
        first_unit.trim_start(),
        &plan[end..]
    );
    match FleetPlan::decode(&duplicated) {
        Err(FleetError::Artifact(ArtifactError::Schema(message))) => {
            assert!(
                message.contains("duplicated unit"),
                "error names the duplication: {message}"
            );
        }
        other => panic!("expected a schema error, got {other:?}"),
    }
}

#[test]
fn garbage_plans_and_shards_error_cleanly() {
    let circuit = suite::s27();
    for garbage in [
        "",
        "null",
        "42",
        "[]",
        "{}",
        "{\"schema\": \"gdf-run\"}",
        "\u{0}\u{1}\u{2}",
        "{\"schema\": \"gdf-fleet\", \"version\": \"two\"}",
    ] {
        assert!(
            FleetPlan::decode(garbage).is_err(),
            "garbage `{garbage:?}` decoded as a fleet plan"
        );
        assert!(
            ShardArtifact::decode(garbage, &circuit).is_err(),
            "garbage `{garbage:?}` decoded as a shard"
        );
    }
}

#[test]
fn truncated_shards_error_instead_of_panicking() {
    let circuit = suite::s27();
    let text = sample_shard();
    let step = (text.len() / 97).max(1);
    for end in (0..text.len()).step_by(step) {
        match ShardArtifact::decode(&text[..end], &circuit) {
            Ok(_) => panic!("truncated shard ({end} bytes) decoded"),
            Err(ArtifactError::Json(_) | ArtifactError::Schema(_)) => {}
            Err(other) => panic!("unexpected error class at {end} bytes: {other:?}"),
        }
    }
}

#[test]
fn future_shard_versions_are_rejected() {
    let circuit = suite::s27();
    // Shard documents use the compact encoding (no space after `:`).
    let future = sample_shard().replacen("\"version\":1", "\"version\":99", 1);
    assert_ne!(future, sample_shard(), "version field not found");
    match ShardArtifact::decode(&future, &circuit) {
        Err(ArtifactError::Schema(message)) => {
            assert!(message.contains("99"), "{message}")
        }
        other => panic!("expected a schema error, got {other:?}"),
    }
}

#[test]
fn corrupt_plan_on_resume_is_a_friendly_error_not_a_panic() {
    let dir = temp_dir("resume-corrupt");
    std::fs::create_dir_all(dir.join("shards")).unwrap();
    for bytes in ["", "{\"schema\": \"gdf-fl", "\u{0}\u{1}", "null"] {
        std::fs::write(Coordinator::plan_path(&dir), bytes).unwrap();
        match Coordinator::resume(&dir) {
            Err(FleetError::Artifact(_) | FleetError::Io(_) | FleetError::Plan(_)) => {}
            Ok(_) => panic!("resume accepted corrupt plan {bytes:?}"),
            Err(other) => panic!("unexpected error class for {bytes:?}: {other}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_shard_at_merge_time_is_quarantined_and_recomputed() {
    let config = RunConfig::new(Backend::StuckAt);
    let node_dir = temp_dir("quarantine-node");
    let node =
        JobServer::start(ServeConfig::new("127.0.0.1:0", &node_dir).with_workers(2)).unwrap();
    let dir = temp_dir("quarantine-coord");
    let plan = FleetPlan::new(
        "quarantine",
        vec![node.local_addr().to_string()],
        config,
        vec![CircuitSource::suite(&suite::s27(), "s27")],
        2,
    )
    .unwrap();
    let mut coordinator = Coordinator::create(&dir, plan)
        .unwrap()
        .with_poll(Duration::from_millis(25));

    // Drive rounds until every unit is done (shards harvested), then
    // vandalize one shard before the merge can happen. merge_ready only
    // runs once all units are done, so stop stepping at that boundary:
    // step() would merge immediately — instead poke the shard between
    // "all done" and the next step by checking state each round.
    let mut vandalized = false;
    for _ in 0..4000 {
        if !vandalized {
            let all_done = coordinator
                .plan()
                .units
                .iter()
                .all(|u| u.state == UnitState::Done);
            if all_done && !dir.join("s27.run.json").exists() {
                std::fs::write(dir.join("shards").join("unit-0.json"), "{\"schema\": ").unwrap();
                vandalized = true;
            }
        }
        if coordinator.step().expect("step survives corruption") {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    // If the merge beat us to it the test proved nothing — force the
    // scenario instead of looping forever.
    if !vandalized {
        // Merge already happened in the same step that completed the
        // last unit; corrupt the shard and delete the merged artifact
        // to replay the merge path against the corrupt file.
        std::fs::write(dir.join("shards").join("unit-0.json"), "{\"schema\": ").unwrap();
        std::fs::remove_file(dir.join("s27.run.json")).unwrap();
        let finished = (0..4000).any(|_| {
            std::thread::sleep(Duration::from_millis(25));
            coordinator.step().expect("step survives corruption")
        });
        assert!(finished, "fleet did not reconverge after quarantine");
    }
    assert!(
        dir.join("shards").join("unit-0.json.corrupt").exists(),
        "corrupt shard was not quarantined"
    );
    assert!(dir.join("s27.run.json").exists(), "merge did not complete");

    node.shutdown();
    let _ = std::fs::remove_dir_all(&node_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
