//! The PR 5 fault-domain guarantees, end to end:
//!
//! * the transition model runs through the unified builder with the
//!   determinism invariant intact (serial ≡ parallel ≡ resumed,
//!   byte-identical records/sequences/artifacts);
//! * coverage accounting is consistent across the engine, the artifact
//!   round trip, and the campaign aggregate;
//! * a version-1 (PR 3/4) artifact loads under the v2 loader and its
//!   patterns re-grade;
//! * a `gdf serve` job runs the transition model to the same canonical
//!   artifact as a local run.

use gdf::core::{
    grade_patterns, Atpg, AtpgError, Backend, Campaign, CircuitSource, Coverage,
    FaultClassification, ModelKind, PatternSet, RunArtifact, RunConfig,
};
use gdf::netlist::{suite, Fault, FaultUniverse};
use gdf::serve::server::submission_for_suite;
use gdf::serve::{Client, JobServer, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdf-domain-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn transition_runs_are_serial_parallel_identical() {
    let c = suite::s27();
    let serial = Atpg::builder(&c)
        .model(ModelKind::Transition)
        .seed(7)
        .build()
        .run();
    assert!(serial.report.row.tested > 0, "transition tests exist");
    assert!(
        serial
            .records
            .iter()
            .all(|r| matches!(r.fault, Fault::Transition(_))),
        "every record carries a transition fault"
    );
    for n in [2, 4] {
        let parallel = Atpg::builder(&c)
            .model(ModelKind::Transition)
            .seed(7)
            .parallelism(n)
            .build()
            .run();
        assert_eq!(serial.records, parallel.records, "parallelism {n}");
        assert_eq!(serial.sequences, parallel.sequences, "parallelism {n}");
        assert_eq!(
            serial.report.row.normalized(),
            parallel.report.row.normalized()
        );
        assert_eq!(serial.report.coverage, parallel.report.coverage);
    }
}

#[test]
fn transition_resume_is_byte_identical() {
    let dir = temp_dir("resume");
    let path = dir.join("tf.run.json");
    let c = suite::s27();
    let config = RunConfig::new(Backend::NonScan)
        .with_model(ModelKind::Transition)
        .with_seed(3);

    let clean = Atpg::builder(&c)
        .model(ModelKind::Transition)
        .seed(3)
        .build()
        .run();
    let clean_artifact = RunArtifact::from_run(&c, &clean, config, None);

    // Interrupted run: cancel after 10 outcomes, keep the checkpoint.
    struct StopAfter(usize);
    impl gdf::core::Observer for StopAfter {
        fn on_fault(&mut self, _r: &gdf::core::FaultRecord) {
            self.0 = self.0.saturating_sub(1);
        }
        fn cancelled(&mut self) -> bool {
            self.0 == 0
        }
    }
    let interrupted = Atpg::builder(&c)
        .model(ModelKind::Transition)
        .seed(3)
        .checkpoint(&path, 4)
        .observer(StopAfter(10))
        .build()
        .run();
    assert_eq!(interrupted.stopped, Some(AtpgError::Cancelled));

    let checkpoint = RunArtifact::load(&path).unwrap();
    assert!(checkpoint.partial);
    assert_eq!(checkpoint.config(), config, "checkpoint records the model");
    let resumed = Atpg::builder(&c)
        .resume_from(&checkpoint)
        .unwrap()
        .build()
        .run();
    assert_eq!(resumed.records, clean.records);
    assert_eq!(resumed.sequences, clean.sequences);
    let resumed_artifact = RunArtifact::from_run(&c, &resumed, config, None);
    assert_eq!(
        resumed_artifact.canonical_encode(),
        clean_artifact.canonical_encode(),
        "resumed transition run is byte-identical to the clean one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transition_model_is_weaker_than_robust_delay() {
    // Non-robust sensitization plus final-value simulation can only ever
    // test *more* faults than the robust model over the same sites.
    let c = suite::s27();
    let robust = Atpg::builder(&c).seed(11).build().run();
    let transition = Atpg::builder(&c)
        .model(ModelKind::Transition)
        .seed(11)
        .build()
        .run();
    assert_eq!(robust.records.len(), transition.records.len());
    assert!(
        transition.report.row.tested >= robust.report.row.tested,
        "transition {} < robust {}",
        transition.report.row.tested,
        robust.report.row.tested
    );
    assert!(transition.report.coverage.fault_coverage() >= robust.report.coverage.fault_coverage());
}

#[test]
fn transition_runs_through_enhanced_scan() {
    let c = suite::s27();
    let run = Atpg::builder(&c)
        .backend(Backend::EnhancedScan)
        .model(ModelKind::Transition)
        .build()
        .run();
    assert!(run.report.row.tested > 0);
    assert!(run
        .records
        .iter()
        .all(|r| matches!(r.fault, Fault::Transition(_))));
}

#[test]
fn unsupported_model_backend_pairings_are_rejected() {
    let c = suite::s27();
    let err = Atpg::builder(&c)
        .backend(Backend::StuckAt)
        .model(ModelKind::Transition)
        .try_build()
        .err()
        .expect("stuck-at cannot run transition faults");
    assert_eq!(
        err,
        AtpgError::UnsupportedModel {
            backend: Backend::StuckAt,
            model: ModelKind::Transition,
        }
    );
    assert!(Atpg::builder(&c)
        .backend(Backend::NonScan)
        .model(ModelKind::Stuck)
        .try_build()
        .is_err());
}

#[test]
fn coverage_is_consistent_with_the_row_and_round_trips() {
    let c = suite::s27();
    for model in [ModelKind::Delay, ModelKind::Transition] {
        let run = Atpg::builder(&c).model(model).seed(5).build().run();
        let cov = run.report.coverage;
        assert_eq!(cov.detected_total(), run.report.row.tested);
        assert_eq!(cov.possibly_detected, run.report.dropped_by_simulation);
        assert_eq!(cov.untestable, run.report.row.untestable);
        assert_eq!(cov.aborted, run.report.row.aborted);
        assert_eq!(cov.total, run.records.len() as u32);
        let collapsed = cov.collapsed.expect("engine runs carry collapse info");
        assert!(collapsed.classes > 0 && collapsed.classes <= cov.total);
        assert!(collapsed.detected <= collapsed.classes);
        // Detected classes can never outnumber detected faults (each
        // detected class has at least one detected member).
        assert!(collapsed.detected <= cov.detected_total());

        // The tally survives the artifact round trip byte-exactly.
        let config = RunConfig::new(Backend::NonScan)
            .with_model(model)
            .with_seed(5);
        let artifact = RunArtifact::from_run(&c, &run, config, None);
        let back = RunArtifact::decode(&artifact.encode()).unwrap();
        assert_eq!(back.report().unwrap().coverage, cov);
        assert_eq!(back.config(), config);
    }
}

#[test]
fn campaign_aggregates_coverage() {
    let report = Campaign::builder()
        .backend(Backend::StuckAt)
        .circuit(suite::s27())
        .circuit(suite::extra_circuit("s42").unwrap())
        .run();
    let total = report.coverage();
    let sum: u32 = report.circuits.iter().map(|r| r.coverage.total).sum();
    assert_eq!(total.total, sum);
    assert!(total.collapsed.is_some(), "both runs carry collapse info");
    assert!(report.render().contains("coverage:"));
}

/// Rewrites a v2 artifact into the exact v1 (PR 3/4) field layout:
/// `version: 1`, the sensitization under the `model` key, no
/// `sensitization` key, no `coverage` object — by editing the JSON tree,
/// so the transformation is immune to formatting details.
fn downgrade_to_v1(v2: &str) -> String {
    use gdf::core::json::Json;
    let mut j = Json::parse(v2).expect("v2 artifact parses");
    let Json::Obj(fields) = &mut j else {
        panic!("artifact is an object")
    };
    let sensitization = fields
        .iter()
        .find(|(k, _)| k == "sensitization")
        .map(|(_, v)| v.clone())
        .expect("v2 carries a sensitization");
    fields.retain(|(k, _)| k != "sensitization");
    for (key, value) in fields.iter_mut() {
        match key.as_str() {
            "version" => *value = Json::Num(1.0),
            "model" => *value = sensitization.clone(),
            "report" => {
                if let Json::Obj(report) = value {
                    report.retain(|(k, _)| k != "coverage");
                }
            }
            _ => {}
        }
    }
    j.pretty()
}

#[test]
fn v1_artifacts_load_and_regrade_under_the_v2_loader() {
    let c = suite::s27();
    let seed = 0x1995_0308;
    let run = Atpg::builder(&c).seed(seed).build().run();
    let config = RunConfig::new(Backend::NonScan);
    let artifact = RunArtifact::from_run(&c, &run, config, Some(CircuitSource::suite(&c, "s27")));

    let v1_text = downgrade_to_v1(&artifact.encode());
    assert!(v1_text.contains("\"version\": 1"), "downgrade applied");
    assert!(
        v1_text.contains("\"model\": \"robust\""),
        "v1 model field restored"
    );
    assert!(!v1_text.contains("coverage"), "v1 has no coverage object");

    // The v2 loader accepts it and maps the config.
    let loaded = RunArtifact::decode(&v1_text).expect("v1 artifact loads");
    let cfg = loaded.config();
    assert_eq!(cfg.model, ModelKind::Delay, "model derived from backend");
    assert_eq!(cfg, config, "v1 config maps onto the v2 shape");

    // The run reconstructs; the coverage tally is rebuilt from records
    // (uncollapsed only — v1 never recorded class counts).
    let restored = loaded.to_run(&c).expect("v1 run reconstructs");
    assert_eq!(restored.records, run.records);
    let cov = loaded.report().unwrap().coverage;
    assert_eq!(cov.detected_total(), run.report.row.tested);
    assert_eq!(cov.collapsed, None, "v1 has no collapsed denominators");

    // And its patterns re-grade through the v2 surface, under both
    // at-speed models.
    let set = PatternSet::from_run(&c, &restored, "non-scan", seed, None);
    let delay = grade_patterns(&c, &set, ModelKind::Delay, &FaultUniverse::default(), seed)
        .expect("delay re-grade");
    assert!(delay.detected() > 0);
    let tf = grade_patterns(
        &c,
        &set,
        ModelKind::Transition,
        &FaultUniverse::default(),
        seed,
    )
    .expect("transition re-grade");
    assert!(tf.detected() >= delay.detected());

    // A resumable v1 checkpoint also feeds resume_from.
    let resumed = Atpg::builder(&c)
        .resume_from(&loaded)
        .expect("v1 artifact resumes")
        .build()
        .run();
    assert_eq!(resumed.records, run.records);
}

#[test]
fn transition_model_end_to_end_through_serve() {
    let dir = temp_dir("serve-tf");
    let server = JobServer::start(
        ServeConfig::new("127.0.0.1:0", &dir)
            .with_workers(2)
            .with_queue_capacity(8),
    )
    .expect("server starts");
    let client = Client::new(server.local_addr().to_string());

    let config = RunConfig::new(Backend::NonScan).with_model(ModelKind::Transition);
    let id = client
        .submit(&submission_for_suite("suite:s27", &config))
        .expect("transition submission accepted");
    let status = client
        .wait(
            id,
            Duration::from_millis(25),
            Some(Duration::from_secs(120)),
        )
        .expect("job finishes");
    assert_eq!(
        status.get("state").and_then(gdf::core::json::Json::as_str),
        Some("done"),
        "{status:?}"
    );
    // The verbose status echoes the model and the coverage tally.
    let verbose = client.status(id).expect("status");
    assert_eq!(
        verbose.get("model").and_then(gdf::core::json::Json::as_str),
        Some("transition")
    );
    let report = verbose.get("report").expect("report present");
    let coverage = report.get("coverage").expect("coverage on the wire");
    assert!(coverage
        .get("detected")
        .and_then(gdf::core::json::Json::as_u64)
        .is_some());

    // The fetched artifact is byte-identical to a local transition run.
    let remote = client.artifact(id).expect("artifact");
    let circuit = suite::s27();
    let local = Atpg::builder(&circuit)
        .model(ModelKind::Transition)
        .build()
        .run();
    let reference = RunArtifact::from_run(
        &circuit,
        &local,
        config,
        Some(CircuitSource::suite(&circuit, "s27")),
    )
    .canonical_encode();
    assert_eq!(remote, reference, "remote transition run matches local");

    // Stuck backend + transition model is a 400 at POST time.
    let bad = client.submit(&{
        let mut config = RunConfig::new(Backend::StuckAt);
        config.model = ModelKind::Transition;
        submission_for_suite("suite:s27", &config)
    });
    assert!(bad.is_err(), "unsupported pairing rejected at POST");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coverage_streaming_tally_matches_batch() {
    let c = suite::s27();
    let run = Atpg::builder(&c).backend(Backend::StuckAt).build().run();
    let mut streamed = Coverage::zero(run.records.len() as u32);
    for r in &run.records {
        streamed.count(r.classification, r.by_simulation);
    }
    let batch = Coverage::from_records(&run.records, None);
    assert_eq!(streamed, batch);
    assert_eq!(
        streamed.detected_total() + streamed.untestable + streamed.aborted,
        streamed.total
    );
    // Spot-check against manual counting.
    let tested = run
        .records
        .iter()
        .filter(|r| r.classification == FaultClassification::Tested)
        .count() as u32;
    assert_eq!(streamed.detected_total(), tested);
}
