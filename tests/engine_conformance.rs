//! Conformance suite for the unified engine API: all three backends run
//! as `Box<dyn AtpgEngine>` through `Atpg::builder`, and their results
//! must match the pre-refactor direct entry points exactly — plus the
//! serial-vs-parallel determinism guarantee.
//!
//! Circuit selection keeps debug-profile wall-clock sane on one core:
//! `s27` runs with the full fault universe (sub-second per backend),
//! `s208` with the stems-only universe (~30 s instead of ~80 s per
//! non-scan run). Parity is asserted over whatever universe a test uses,
//! identically on both sides.

use gdf::core::{
    Atpg, AtpgEngine, Backend, DelayAtpg, DelayAtpgConfig, FaultClassification, FaultOutcome,
    ScanDelayAtpg,
};
use gdf::netlist::{suite, Circuit, FaultUniverse};
use gdf::semilet::stuckat::{StuckAtAtpg, StuckAtOutcome};

/// `(circuit, universe)` pairs every parity test iterates.
fn corpus() -> Vec<(Circuit, FaultUniverse)> {
    vec![
        (suite::s27(), FaultUniverse::default()),
        (
            suite::table3_circuit("s208").expect("s208 profile"),
            FaultUniverse::stems_only(),
        ),
    ]
}

/// (tested, untestable, aborted) from a run's records.
fn split(run: &gdf::core::AtpgRun) -> (u32, u32, u32) {
    let count = |c: FaultClassification| {
        run.records.iter().filter(|r| r.classification == c).count() as u32
    };
    (
        count(FaultClassification::Tested),
        count(FaultClassification::Untestable),
        count(FaultClassification::Aborted),
    )
}

/// Asserts two runs of the same configuration are byte-identical modulo
/// wall-clock.
fn assert_identical(a: &gdf::core::AtpgRun, b: &gdf::core::AtpgRun, what: &str) {
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.sequences, b.sequences, "{what}: sequences");
    assert_eq!(
        a.report.row.normalized(),
        b.report.row.normalized(),
        "{what}: report row"
    );
    assert_eq!(
        a.report.dropped_by_simulation, b.report.dropped_by_simulation,
        "{what}: credit"
    );
}

#[test]
fn all_backends_run_as_trait_objects() {
    let circuit = suite::s27();
    let engines: Vec<Box<dyn AtpgEngine>> = vec![
        Atpg::builder(&circuit).backend(Backend::NonScan).build(),
        Atpg::builder(&circuit)
            .backend(Backend::EnhancedScan)
            .build(),
        Atpg::builder(&circuit).backend(Backend::StuckAt).build(),
    ];
    for mut engine in engines {
        let faults = engine.faults().to_vec();
        assert!(!faults.is_empty(), "{}", engine.name());

        // Per-fault targeting agrees with the whole-universe run (fault 0
        // is processed first, so it can never be credited by simulation).
        let spot = engine.target(faults[0]).expect("supported fault model");
        let run = engine.run();
        assert_eq!(run.records.len(), faults.len(), "{}", engine.name());
        assert_eq!(
            run.records[0].classification == FaultClassification::Tested,
            spot.is_detected(),
            "{}: target() and run() disagree on fault 0",
            engine.name()
        );
        assert!(run.stopped.is_none());
        assert_eq!(
            run.report.row.total_faults() as usize,
            faults.len(),
            "{}",
            engine.name()
        );
        assert!(
            run.report.row.tested > 0,
            "{} finds tests on s27",
            engine.name()
        );
    }
}

#[test]
fn non_scan_engine_matches_direct_driver() {
    for (circuit, universe) in corpus() {
        let config = DelayAtpgConfig::new().with_universe(universe);
        let direct = DelayAtpg::with_config(&circuit, config).run();
        let engine = Atpg::builder(&circuit)
            .backend(Backend::NonScan)
            .universe(universe)
            .build()
            .run();
        assert_identical(&direct, &engine, circuit.name());

        let parallel = Atpg::builder(&circuit)
            .backend(Backend::NonScan)
            .universe(universe)
            .parallelism(4)
            .build()
            .run();
        assert_identical(&direct, &parallel, &format!("{} parallel", circuit.name()));
    }
}

/// The packed (64-fault-per-word) fault-drop path yields byte-identical
/// `AtpgRun`s to the scalar reference simulator on the conformance corpus
/// — records, sequences, credit counts, everything but wall-clock.
#[test]
fn packed_fault_drop_is_byte_identical_to_scalar_reference() {
    for (circuit, universe) in corpus() {
        let packed =
            DelayAtpg::with_config(&circuit, DelayAtpgConfig::new().with_universe(universe)).run();
        let reference = DelayAtpg::with_config(
            &circuit,
            DelayAtpgConfig::new()
                .with_universe(universe)
                .with_reference_fsim(true),
        )
        .run();
        assert_identical(
            &packed,
            &reference,
            &format!("{} packed vs reference fsim", circuit.name()),
        );
    }
}

#[test]
fn enhanced_scan_engine_matches_direct_calls() {
    for (circuit, universe) in corpus() {
        let scan = ScanDelayAtpg::new(&circuit);
        let faults = universe.delay_faults(&circuit);
        let mut tested = 0u32;
        let mut untestable = 0u32;
        let mut aborted = 0u32;
        for &f in &faults {
            match scan.generate(f) {
                FaultOutcome::Detected(_) => tested += 1,
                FaultOutcome::Untestable => untestable += 1,
                FaultOutcome::Aborted => aborted += 1,
            }
        }
        let run = Atpg::builder(&circuit)
            .backend(Backend::EnhancedScan)
            .universe(universe)
            .build()
            .run();
        assert_eq!(
            split(&run),
            (tested, untestable, aborted),
            "{}",
            circuit.name()
        );
        // Enhanced-scan sequences are bare launch/capture pairs.
        assert_eq!(run.report.row.patterns, 2 * tested);
        assert!(run.sequences.iter().all(|s| s.at_speed() == Some(1)));

        let parallel = Atpg::builder(&circuit)
            .backend(Backend::EnhancedScan)
            .universe(universe)
            .parallelism(4)
            .build()
            .run();
        assert_identical(&run, &parallel, &format!("{} parallel", circuit.name()));
    }
}

#[test]
fn stuck_at_engine_matches_direct_calls() {
    for (circuit, universe) in corpus() {
        let atpg = StuckAtAtpg::new(&circuit);
        let faults = universe.stuck_faults(&circuit);
        let mut tested = 0u32;
        let mut untestable = 0u32;
        let mut aborted = 0u32;
        let mut patterns = 0u32;
        for &f in &faults {
            match atpg.generate(f) {
                StuckAtOutcome::Test { vectors, .. } => {
                    tested += 1;
                    patterns += vectors.len() as u32;
                }
                StuckAtOutcome::Untestable => untestable += 1,
                StuckAtOutcome::Aborted => aborted += 1,
            }
        }
        let run = Atpg::builder(&circuit)
            .backend(Backend::StuckAt)
            .universe(universe)
            .build()
            .run();
        assert_eq!(
            split(&run),
            (tested, untestable, aborted),
            "{}",
            circuit.name()
        );
        assert_eq!(run.report.row.patterns, patterns, "{}", circuit.name());
        // Stuck-at sequences are all-slow static sequences.
        assert!(run.sequences.iter().all(|s| s.at_speed().is_none()));
        for record in &run.records {
            if record.classification == FaultClassification::Tested {
                assert!(record.sequence_index.is_some());
            }
        }
    }
}

#[test]
fn parallel_stuck_at_and_scan_identical_on_s27() {
    // Non-scan parallel determinism (the interesting case: the credit
    // pass drops faults mid-wave) is covered on both corpus circuits in
    // `non_scan_engine_matches_direct_driver`; the credit-free backends
    // only need the cheap circuit here.
    let circuit = suite::s27();
    for backend in [Backend::EnhancedScan, Backend::StuckAt] {
        let serial = Atpg::builder(&circuit)
            .backend(backend)
            .seed(3)
            .build()
            .run();
        let parallel = Atpg::builder(&circuit)
            .backend(backend)
            .seed(3)
            .parallelism(4)
            .build()
            .run();
        assert_identical(&serial, &parallel, &format!("{backend:?}"));
    }
}
